"""The locking scheduler: one engine implementing every Table 2 isolation level.

The engine updates the shared database *in place* (the classical single-
version architecture the paper's Section 2.3 describes): a write first records
a before-image in the undo log, then applies; an abort restores the before-
images in reverse.  Which locks each action must take — and for how long —
comes from the :class:`~repro.locking.policy.LockingPolicy` chosen at
construction, so the same code realizes Degree 0 through Locking
SERIALIZABLE, plus Cursor Stability.

Blocking is cooperative: a conflicting lock request returns a BLOCKED result
naming the holders, and the schedule runner retries later (and detects
deadlocks on the resulting waits-for graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.interface import Engine, EngineError, OpResult
from ..storage.database import Database
from ..storage.predicates import Predicate
from ..storage.recovery import UndoLog
from ..storage.rows import Row
from .lock_manager import LockManager
from .modes import ItemTarget, LockDuration, LockMode, PredicateTarget, RowTarget
from .policy import LockingPolicy, LockRule, policy_for

__all__ = ["LockingEngine", "CursorState"]


@dataclass
class CursorState:
    """An open cursor: the items it ranges over and its current position."""

    items: List[str]
    position: int = -1

    @property
    def current_item(self) -> Optional[str]:
        """The item the cursor is positioned on, or None before the first fetch."""
        if 0 <= self.position < len(self.items):
            return self.items[self.position]
        return None

    @property
    def exhausted(self) -> bool:
        """True when every item has been fetched."""
        return self.position + 1 >= len(self.items)


class LockingEngine(Engine):
    """Lock-based concurrency control parameterized by a Table 2 policy."""

    supports_checkpoints = True

    def __init__(self, database: Database,
                 level: IsolationLevelName = IsolationLevelName.SERIALIZABLE,
                 policy: Optional[LockingPolicy] = None):
        super().__init__(database)
        self.policy = policy or policy_for(level)
        self.level = self.policy.level
        self.name = f"Locking {self.policy.name}"
        self.locks = LockManager()
        self.undo = UndoLog()
        self._cursors: Dict[Tuple[int, str], CursorState] = {}
        #: Interned item targets — every action on an item builds the same
        #: immutable target, so one instance per item serves all requests.
        self._item_targets: Dict[str, ItemTarget] = {}

    def _item_target(self, item: str) -> ItemTarget:
        target = self._item_targets.get(item)
        if target is None:
            target = self._item_targets[item] = ItemTarget(item)
        return target

    def blocking_version(self) -> int:
        # Blocked results depend only on the granted-lock table: the engine
        # mutates the database exclusively alongside granted lock operations,
        # so the table version also covers the pre-lock row reads of
        # update_row/delete_row.
        return self.locks.version

    # -- small helpers ----------------------------------------------------------------

    def _acquire(self, txn: int, target, rule: Optional[LockRule],
                 cursor: Optional[str] = None,
                 override_mode: Optional[LockMode] = None) -> Optional[OpResult]:
        """Request the lock a rule demands.  Returns a BLOCKED result or None."""
        if rule is None:
            return None
        mode = override_mode or rule.mode
        result = self.locks.request(txn, target, mode, rule.duration, cursor=cursor)
        if not result.granted:
            return OpResult.blocked(result.blockers,
                                    reason=f"waiting for {mode.value} lock on {target}")
        return None

    def _after_action(self, txn: int, rule: Optional[LockRule]) -> None:
        """Release short-duration locks once the action has completed."""
        if rule is not None and rule.duration is LockDuration.SHORT:
            self.locks.release_short(txn)

    # -- item reads and writes ----------------------------------------------------------

    def read(self, txn: int, item: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        rule = self.policy.item_read
        blocked = self._acquire(txn, self._item_target(item), rule)
        if blocked is not None:
            return blocked
        value = self.database.get_item(item)
        self._after_action(txn, rule)
        return OpResult.ok(value)

    def write(self, txn: int, item: str, value: Any) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        rule = self.policy.write
        blocked = self._acquire(txn, self._item_target(item), rule)
        if blocked is not None:
            return blocked
        self.undo.record_item(txn, self.database, item)
        self.database.set_item(item, value)
        self._after_action(txn, rule)
        return OpResult.ok(value)

    # -- predicate reads and row writes ---------------------------------------------------

    def select(self, txn: int, predicate: Predicate) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        rule = self.policy.predicate_read
        blocked = self._acquire(txn, PredicateTarget(predicate), rule)
        if blocked is not None:
            return blocked
        rows = [row.copy() for row in self.database.select(predicate)]
        self._after_action(txn, rule)
        return OpResult.ok(rows)

    def insert(self, txn: int, table: str, row: Row) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        rule = self.policy.write
        target = RowTarget(table, row.key, before=None, after=row)
        blocked = self._acquire(txn, target, rule)
        if blocked is not None:
            return blocked
        self.undo.record_row_insert(txn, table, row.key)
        self.database.table(table).insert(row.copy())
        self._after_action(txn, rule)
        return OpResult.ok(value=row.copy(), item=f"{table}/{row.key}")

    def update_row(self, txn: int, table: str, key: str, changes: Dict[str, Any]) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        current = self.database.table(table).get(key)
        if current is None:
            return OpResult.aborted(f"no row {key!r} in table {table!r}")
        after = current.updated(**changes)
        rule = self.policy.write
        target = RowTarget(table, key, before=current.copy(), after=after)
        blocked = self._acquire(txn, target, rule)
        if blocked is not None:
            return blocked
        self.undo.record_row_update(txn, table, current)
        self.database.table(table).update(key, **changes)
        self._after_action(txn, rule)
        return OpResult.ok(value=after, item=f"{table}/{key}")

    def delete_row(self, txn: int, table: str, key: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        current = self.database.table(table).get(key)
        if current is None:
            return OpResult.aborted(f"no row {key!r} in table {table!r}")
        rule = self.policy.write
        target = RowTarget(table, key, before=current.copy(), after=None)
        blocked = self._acquire(txn, target, rule)
        if blocked is not None:
            return blocked
        self.undo.record_row_delete(txn, table, current)
        self.database.table(table).delete(key)
        self._after_action(txn, rule)
        return OpResult.ok(item=f"{table}/{key}")

    # -- cursors (Section 4.1) ---------------------------------------------------------------

    def open_cursor(self, txn: int, cursor: str, items: List[str]) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        if not items:
            return OpResult.aborted("cannot open a cursor over no items")
        self._cursors[(txn, cursor)] = CursorState(list(items))
        return OpResult.ok()

    def fetch(self, txn: int, cursor: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._cursor_state(txn, cursor)
        if state.exhausted:
            return OpResult.aborted(f"cursor {cursor!r} has no more items")
        next_item = state.items[state.position + 1]
        rule = self.policy.cursor_read
        # Moving the cursor releases the lock held on the previous current row.
        if rule is not None and rule.duration is LockDuration.CURSOR:
            self.locks.release_cursor(txn, cursor)
        blocked = self._acquire(txn, self._item_target(next_item), rule, cursor=cursor)
        if blocked is not None:
            return blocked
        state.position += 1
        value = self.database.get_item(next_item)
        self._after_action(txn, rule)
        return OpResult.ok(value=value, item=next_item)

    def cursor_update(self, txn: int, cursor: str, value: Any) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._cursor_state(txn, cursor)
        item = state.current_item
        if item is None:
            return OpResult.aborted(f"cursor {cursor!r} is not positioned on a row")
        rule = self.policy.write
        blocked = self._acquire(txn, self._item_target(item), rule)
        if blocked is not None:
            return blocked
        self.undo.record_item(txn, self.database, item)
        self.database.set_item(item, value)
        self._after_action(txn, rule)
        return OpResult.ok(value=value, item=item)

    def close_cursor(self, txn: int, cursor: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        self.locks.release_cursor(txn, cursor)
        self._cursors.pop((txn, cursor), None)
        return OpResult.ok()

    def _cursor_state(self, txn: int, cursor: str) -> CursorState:
        try:
            return self._cursors[(txn, cursor)]
        except KeyError:
            raise EngineError(f"T{txn} has no open cursor named {cursor!r}") from None

    # -- termination -----------------------------------------------------------------------------

    def commit(self, txn: int) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        self.undo.forget(txn)
        self.locks.release_all(txn)
        self._drop_cursors(txn)
        self._mark_committed(txn)
        return OpResult.ok()

    def abort(self, txn: int, reason: str = "voluntary abort") -> OpResult:
        if not self.is_active(txn):
            # Aborting an already-terminated transaction is a no-op for the
            # runner (it may race a deadlock-victim abort with a program step).
            return OpResult.ok()
        self.undo.undo(txn, self.database)
        self.locks.release_all(txn)
        self._drop_cursors(txn)
        self._mark_aborted(txn, reason)
        return OpResult.ok()

    def _drop_cursors(self, txn: int) -> None:
        for key in [key for key in self._cursors if key[0] == txn]:
            del self._cursors[key]

    # -- checkpoint / restore --------------------------------------------------------------------

    def checkpoint(self):
        return (
            self._base_checkpoint(),
            self.database.checkpoint(),
            self.locks.checkpoint(),
            self.undo.checkpoint(),
            {key: (tuple(state.items), state.position)
             for key, state in self._cursors.items()},
        )

    def restore(self, token) -> None:
        base, database, locks, undo, cursors = token
        self._base_restore(base)
        self.database.restore_checkpoint(database)
        self.locks.restore(locks)
        self.undo.restore(undo)
        self._cursors = {
            key: CursorState(list(items), position)
            for key, (items, position) in cursors.items()
        }
