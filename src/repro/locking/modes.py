"""Lock modes, durations, and lock targets (items, rows, predicates).

Table 2 of the paper characterizes each locking isolation level by three
dimensions of its locks: *scope* (data items vs predicates), *mode* (Read /
Share vs Write / Exclusive), and *duration* (short — released when the action
completes — vs long — held until commit or abort).  Cursor Stability adds a
fourth duration: a read lock held while the item is the *current of cursor*.

This module defines those vocabularies plus the lock-target hierarchy used by
the lock manager.  Targets know how to detect overlap with each other,
including the phantom-aware overlap between a row write and a predicate lock
(Section 2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from ..storage.predicates import Predicate
from ..storage.rows import Row

__all__ = [
    "LockMode",
    "LockDuration",
    "LockTarget",
    "ItemTarget",
    "RowTarget",
    "PredicateTarget",
    "modes_conflict",
]


class LockMode(enum.Enum):
    """Share (read) or Exclusive (write)."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class LockDuration(enum.Enum):
    """How long a lock is held.

    * ``SHORT`` — released as soon as the action completes.
    * ``LONG`` — held until the transaction commits or aborts.
    * ``CURSOR`` — held while the locked item is the current row of an open
      cursor (Cursor Stability, Section 4.1); released when the cursor moves
      on or closes.
    """

    SHORT = "short"
    LONG = "long"
    CURSOR = "cursor"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def modes_conflict(first: LockMode, second: LockMode) -> bool:
    """Two locks by *different* transactions conflict unless both are Shared."""
    return first is LockMode.EXCLUSIVE or second is LockMode.EXCLUSIVE


class LockTarget:
    """Base class for the thing a lock covers."""

    def overlaps(self, other: "LockTarget") -> bool:
        """True when the two targets can cover a common (possibly phantom) item."""
        raise NotImplementedError

    def key(self) -> Any:
        """A hashable identity used to recognise re-requests of the same target."""
        raise NotImplementedError


@dataclass(frozen=True)
class ItemTarget(LockTarget):
    """A lock on a named scalar data item (the paper's ``x``, ``y``, ``z``)."""

    name: str

    def overlaps(self, other: LockTarget) -> bool:
        if isinstance(other, ItemTarget):
            return self.name == other.name
        return False

    def key(self) -> Any:
        return ("item", self.name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class RowTarget(LockTarget):
    """A lock on one row of a table.

    ``before`` and ``after`` carry the row images around a write so that
    predicate locks can apply the paper's "would cause to satisfy" test.  For
    pure reads both images are the row as read.
    """

    table: str
    row_key: str
    before: Optional[Row] = None
    after: Optional[Row] = None

    def overlaps(self, other: LockTarget) -> bool:
        if isinstance(other, RowTarget):
            return self.table == other.table and self.row_key == other.row_key
        if isinstance(other, PredicateTarget):
            return other.overlaps(self)
        return False

    def key(self) -> Any:
        return ("row", self.table, self.row_key)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}/{self.row_key}"


@dataclass(frozen=True)
class PredicateTarget(LockTarget):
    """A lock on every item (present or phantom) satisfying a predicate."""

    predicate: Predicate

    def overlaps(self, other: LockTarget) -> bool:
        if isinstance(other, PredicateTarget):
            return self.predicate.may_overlap(other.predicate)
        if isinstance(other, RowTarget):
            if other.table != self.predicate.table:
                return False
            before, after = other.before, other.after
            if before is None and after is None:
                # No image information: be conservative, same table may overlap.
                return True
            return self.predicate.covers_write(other.table, before, after)
        return False

    def key(self) -> Any:
        return ("predicate", self.predicate.table, self.predicate.name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.predicate)
