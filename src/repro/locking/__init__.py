"""Lock-based concurrency control: Table 2 of the paper."""

from .modes import (
    ItemTarget,
    LockDuration,
    LockMode,
    LockTarget,
    PredicateTarget,
    RowTarget,
    modes_conflict,
)
from .lock_manager import HeldLock, LockManager, LockRequestResult
from .deadlock import Deadlock, WaitsForGraph
from .policy import POLICIES, LockRule, LockingPolicy, policy_for
from .engine import CursorState, LockingEngine

__all__ = [
    "ItemTarget", "LockDuration", "LockMode", "LockTarget", "PredicateTarget",
    "RowTarget", "modes_conflict",
    "HeldLock", "LockManager", "LockRequestResult",
    "Deadlock", "WaitsForGraph",
    "POLICIES", "LockRule", "LockingPolicy", "policy_for",
    "CursorState", "LockingEngine",
]
