"""The distributed campaign runner: N supervised workers over a lease queue.

:class:`CampaignRunner` is the parent-side supervisor.  It materializes the
campaign's chunk stream once, registers every (scope, chunk) with a
:class:`~repro.distrib.queue.LeaseQueue`, and spawns N worker processes
**directly** via ``multiprocessing.Process`` — never a ``Pool``, whose
shared queues a SIGKILLed worker can leave holding an orphaned lock.  Each
worker talks to the parent over its *own* duplex pipe: a worker killed
mid-send corrupts only its private channel (the parent reads EOF and moves
on), and no lock is shared across processes at all.

Workers are plain chunk executors: receive ``(ChunkTask, token)``, run it
through the ordinary :func:`~repro.explorer.worker.execute_chunk`
trie/batch-kernel path, send back the records.  All policy — granting,
heartbeat renewal, expiry reclaim, backoff, poison quarantine, in-order
fenced commits, death detection, respawn — lives in the parent loop, which
is also the only process that ever touches the store (the PR 8 parent-only
protocol, unchanged).

Determinism: the records a chunk produces are a pure function of the
campaign config (the explorer's contract), the chunk stream is fixed before
any worker starts, and commits land in stream order under the contiguous
cursor.  Faults, worker counts, and lease timing decide only *which worker
executes a chunk when* — never what the chunk produces — so the final
store contents are byte-identical to a serial run's.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.isolation import IsolationLevelName
# OUTCOME_MEMO_AUTO_LIMIT: the runner must resolve the outcome memo exactly
# like serial ``explore()`` does, or its records would differ from the
# serial control's for small spaces.
from ..explorer.explorer import (
    DEFAULT_LEVELS,
    OUTCOME_MEMO_AUTO_LIMIT,
    _resolve_worker_count,
)
from ..explorer.schedules import Interleaving, schedule_space
from ..explorer.worker import ChunkTask, execute_chunk
from ..persist.records import default_campaign_id, merge_stats
from ..persist.session import campaign_config
from ..persist.store import CampaignStore
from ..workloads.program_sets import ProgramSetSpec, resolve_program_set
from .faults import (
    FaultPlan,
    WorkerFaultInjector,
    busy_hook_for,
    commit_hook_for,
)
from .heartbeats import HeartbeatSender
from .queue import LeaseQueue, PoisonedChunk

__all__ = ["CampaignRunner", "CampaignRunResult"]


@dataclass(frozen=True)
class CampaignRunResult:
    """What one distributed campaign run did, and how it degraded."""

    campaign_id: str
    success: bool                #: every chunk of every scope committed
    timed_out: bool
    committed_chunks: int
    committed_records: int
    fenced_results: int          #: zombie results rejected by the fence
    respawns: int
    poisoned: Tuple[PoisonedChunk, ...]
    stats: Dict[str, int]        #: lease + worker cache + store counters
    duration: float
    #: Worst observed gap between detecting a lost worker and durably
    #: committing its reclaimed chunk — ``None`` when nothing was lost.
    recovery_latency_s: Optional[float]


@dataclass
class _WorkerHandle:
    index: int
    incarnation: int
    process: multiprocessing.Process
    conn: Any                                 #: parent end of the duplex pipe
    busy: Optional[Tuple[str, int, int]] = None    #: (scope, chunk, token)
    last_seen: float = 0.0
    broken: bool = False                      #: pipe hit EOF; await death


def _worker_main(worker_index: int, incarnation: int, conn,
                 heartbeat_interval: float,
                 fault_specs: Sequence) -> None:
    """Worker process body: pull tasks, execute, heartbeat, report."""
    injector = WorkerFaultInjector(fault_specs)
    send_lock = threading.Lock()

    def post(payload: Tuple) -> None:
        with send_lock:
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError):   # parent is gone; die quietly
                pass

    heartbeat = HeartbeatSender(
        lambda scope, chunk, token: post(
            ("hb", worker_index, incarnation, scope, chunk, token)),
        heartbeat_interval)
    heartbeat.start()
    ordinal = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            _, task, token = message
            scope = task.level.value
            heartbeat.begin(scope, task.chunk_index, token)
            injector.fire(ordinal, "pre", heartbeat)
            result = execute_chunk(task)
            injector.fire(ordinal, "post", heartbeat)
            heartbeat.end()
            post(("result", worker_index, incarnation, scope,
                  task.chunk_index, token, result.records,
                  result.cache_stats))
            ordinal += 1
    finally:
        heartbeat.stop()


class CampaignRunner:
    """Supervise N leased workers until the campaign commits (or degrades)."""

    def __init__(self, store: CampaignStore, spec: ProgramSetSpec, *,
                 levels: Sequence[IsolationLevelName] = DEFAULT_LEVELS,
                 mode: str = "auto", max_schedules: int = 1000, seed: int = 0,
                 chunk_size: int = 64,
                 workers: Union[int, str] = 2,
                 campaign_id: Optional[str] = None,
                 lease_duration: float = 2.0,
                 heartbeat_interval: float = 0.5,
                 max_attempts: int = 5,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 jitter_seed: int = 0,
                 batch_kernel: Optional[str] = None,
                 faults: Optional[FaultPlan] = None,
                 requeue_poisoned: bool = False,
                 stall_timeout: Optional[float] = None,
                 max_respawns: int = 16,
                 tick: float = 0.02,
                 deadline_s: Optional[float] = 300.0) -> None:
        self.store = store
        # Canonical param order (what ProgramSetSpec.make produces): the
        # store round-trips specs through sorted params, so the runner
        # normalizes up front to keep stored-config renders byte-identical
        # however the caller ordered the tuple.
        self.spec = ProgramSetSpec.make(spec.name, **spec.kwargs())
        self.levels = tuple(levels)
        self.mode = mode
        self.max_schedules = int(max_schedules)
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)
        self.workers = _resolve_worker_count(workers)
        self.lease_duration = float(lease_duration)
        self.heartbeat_interval = float(heartbeat_interval)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.jitter_seed = int(jitter_seed)
        self.batch_kernel = batch_kernel
        self.faults = faults or FaultPlan()
        self.requeue_poisoned = requeue_poisoned
        self.stall_timeout = (float(stall_timeout) if stall_timeout is not None
                              else max(4.0 * self.lease_duration,
                                       10.0 * self.heartbeat_interval))
        self.max_respawns = int(max_respawns)
        self.tick = float(tick)
        self.deadline_s = deadline_s
        # The distributed path executes every schedule (no sleep-set plan
        # sharing across processes), so the campaign config pins
        # reduction="none" — the same config a serial explore(store=...,
        # reduction="none") run of this campaign would write.
        self.config = campaign_config(spec, mode=mode,
                                      max_schedules=self.max_schedules,
                                      seed=self.seed, reduction="none",
                                      chunk_size=self.chunk_size)
        self.campaign_id = campaign_id or default_campaign_id(self.config)

    # -- orchestration ----------------------------------------------------------------

    def run(self) -> CampaignRunResult:
        started = time.monotonic()
        self.store.open_campaign(self.campaign_id, self.config)
        builder = resolve_program_set(self.spec)
        _, programs = builder(**self.spec.kwargs())
        space = schedule_space(programs, mode=self.mode,
                               max_schedules=self.max_schedules,
                               seed=self.seed)
        # Same resolution rule as serial explore(outcome_memo="auto"): the
        # memo changes which realized history a record carries (its
        # canonical member's), so the runner must flip it exactly when the
        # serial control would.
        outcome_memo = space.total <= OUTCOME_MEMO_AUTO_LIMIT
        chunks: List[Tuple[int, Tuple[Interleaving, ...]]] = \
            list(space.iter_chunks(self.chunk_size))
        total_chunks = len(chunks)
        payloads = {index: schedules for index, schedules in chunks}
        level_of = {level.value: level for level in self.levels}

        queue = LeaseQueue(
            self.store, self.campaign_id,
            lease_duration=self.lease_duration,
            max_attempts=self.max_attempts,
            backoff_base=self.backoff_base, backoff_cap=self.backoff_cap,
            jitter_seed=self.jitter_seed)
        queue.commit_hook = commit_hook_for(self.faults.specs)
        busy_hook = busy_hook_for(self.faults.specs)
        if busy_hook is not None and hasattr(self.store, "busy_fault_hook"):
            self.store.busy_fault_hook = busy_hook

        progress = self.store.scope_progress(self.campaign_id)
        already_complete = set()
        for level in self.levels:
            scope = level.value
            state = progress.get(scope)
            cursor = state.cursor if state is not None else 0
            if state is not None and state.complete:
                already_complete.add(scope)
                cursor = total_chunks
            queue.register_scope(scope, total_chunks, cursor)
        if self.requeue_poisoned:
            queue.drain_poisoned(requeue=True)

        handles: List[_WorkerHandle] = []
        respawns = 0
        worker_stats: Dict[str, int] = {}
        pending_recovery: Dict[Tuple[str, int], float] = {}
        latencies: List[float] = []
        timed_out = False

        def spawn(index: int, incarnation: int) -> _WorkerHandle:
            parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
            process = multiprocessing.Process(
                target=_worker_main,
                args=(index, incarnation, child_conn, self.heartbeat_interval,
                      self.faults.worker_specs(index, incarnation)),
                daemon=True)
            process.start()
            child_conn.close()
            return _WorkerHandle(index, incarnation, process, parent_conn,
                                 last_seen=time.monotonic())

        def assign(handle: _WorkerHandle) -> bool:
            lease = queue.acquire(f"w{handle.index}")
            if lease is None:
                return False
            level = level_of[lease.scope]
            task = ChunkTask(lease.chunk_index, self.spec, level,
                             payloads[lease.chunk_index], builder, None,
                             outcome_memo=outcome_memo,
                             batch_kernel=self.batch_kernel)
            try:
                handle.conn.send(("chunk", task, lease.token))
            except (BrokenPipeError, OSError):
                # Worker died between liveness check and send; the lease
                # reclaims on the death path below.
                handle.broken = True
                return False
            handle.busy = (lease.scope, lease.chunk_index, lease.token)
            return True

        def note_lost(scope: str, chunk: int) -> None:
            pending_recovery.setdefault((scope, chunk), time.monotonic())

        def handle_message(handle: _WorkerHandle, message: Tuple) -> None:
            kind = message[0]
            if kind == "hb":
                _, windex, inc, scope, chunk, token = message
                if inc == handle.incarnation:
                    handle.last_seen = time.monotonic()
                queue.renew(scope, chunk, token)
            elif kind == "result":
                (_, windex, inc, scope, chunk, token, records,
                 cache_stats) = message
                if inc == handle.incarnation:
                    handle.last_seen = time.monotonic()
                    if handle.busy == (scope, chunk, token):
                        handle.busy = None
                accepted = queue.complete(scope, chunk, token, records)
                if accepted:
                    merge_stats(worker_stats, cache_stats)
                    lost_at = pending_recovery.pop((scope, chunk), None)
                    if lost_at is not None:
                        latencies.append(time.monotonic() - lost_at)

        if not queue.all_committed():
            handles = [spawn(index, 0) for index in range(self.workers)]
        try:
            while not queue.all_committed():
                if not queue.has_open_work():
                    break               # only poisoned gaps remain
                if self.deadline_s is not None and \
                        time.monotonic() - started > self.deadline_s:
                    timed_out = True
                    break
                live_conns = [handle.conn for handle in handles
                              if not handle.broken
                              and handle.process.is_alive()]
                for ready in mp_connection.wait(live_conns,
                                                timeout=self.tick) if live_conns else ():
                    handle = next(h for h in handles if h.conn is ready)
                    try:
                        message = ready.recv()
                    except (EOFError, OSError):
                        handle.broken = True
                        continue
                    handle_message(handle, message)

                now = time.monotonic()
                for reclaimed in queue.reclaim_expired():
                    note_lost(reclaimed.scope, reclaimed.chunk_index)

                for position, handle in enumerate(handles):
                    if not handle.process.is_alive():
                        # Dead worker: reclaim its lease immediately and
                        # respawn a fresh incarnation on a fresh pipe.
                        if handle.busy is not None:
                            scope, chunk, token = handle.busy
                            reclaimed = queue.force_expire(scope, chunk, token)
                            if reclaimed is not None:
                                note_lost(scope, chunk)
                            handle.busy = None
                        handle.conn.close()
                        if respawns < self.max_respawns:
                            respawns += 1
                            handles[position] = spawn(handle.index,
                                                      handle.incarnation + 1)
                    elif handle.busy is not None and \
                            now - handle.last_seen > self.stall_timeout:
                        # Hung past any plausible slow chunk: kill it; the
                        # death path above reclaims and respawns next tick.
                        handle.process.kill()

                # Every worker lost AND the respawn budget spent: nothing
                # will ever execute again, stop instead of spinning to the
                # deadline.  (A merely-dead worker with budget remaining is
                # respawned by the death pass next tick, so no break.)
                if handles and respawns >= self.max_respawns \
                        and not any(handle.process.is_alive()
                                    for handle in handles):
                    break

                for handle in handles:
                    if handle.busy is None and not handle.broken \
                            and handle.process.is_alive():
                        if not assign(handle):
                            break
        finally:
            for handle in handles:
                if handle.process.is_alive():
                    try:
                        handle.conn.send(None)
                    except (BrokenPipeError, OSError):
                        pass
            deadline = time.monotonic() + 2.0
            for handle in handles:
                handle.process.join(timeout=max(0.0,
                                                deadline - time.monotonic()))
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
                handle.conn.close()

        success = queue.all_committed()
        if success:
            for level in self.levels:
                scope = level.value
                if scope not in already_complete:
                    self.store.mark_scope_complete(
                        self.campaign_id, scope, total_chunks,
                        {"static_pruned_detectors": 0})
        stats = queue.lease_stats()
        merge_stats(stats, {f"worker_{key}": value
                            for key, value in worker_stats.items()})
        merge_stats(stats, {f"store_{key}": value
                            for key, value in self.store.stats().items()})
        stats["respawns"] = respawns
        return CampaignRunResult(
            campaign_id=self.campaign_id,
            success=success,
            timed_out=timed_out,
            committed_chunks=stats.get("chunks_committed", 0),
            committed_records=stats.get("records_committed", 0),
            fenced_results=stats.get("fenced_results", 0),
            respawns=respawns,
            poisoned=queue.poisoned(),
            stats=stats,
            duration=time.monotonic() - started,
            recovery_latency_s=max(latencies) if latencies else None,
        )
