"""Worker-side heartbeat thread: liveness for the currently held lease.

A :class:`HeartbeatSender` runs one daemon thread inside each worker
process.  While the worker executes a chunk, the thread emits the held
lease's identity every ``interval`` seconds through a caller-supplied
``emit`` callable (the worker's pipe, behind its send lock); the parent
renews the lease on every beat.  A worker that stops beating — killed,
hung, or deliberately paused by the fault injector — misses renewals, its
lease deadline lapses, and the parent reclaims the chunk.

The sender is deliberately dumb: it never decides anything, it only
reports.  Lease-loss policy (reclaim, backoff, poison, fencing) lives
entirely in the parent's :class:`~repro.distrib.queue.LeaseQueue`.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

__all__ = ["HeartbeatSender"]


class HeartbeatSender:
    """Emit ``(scope, chunk_index, token)`` beats while a lease is held."""

    def __init__(self, emit: Callable[[str, int, int], None],
                 interval: float) -> None:
        self._emit = emit
        self._interval = float(interval)
        self._lock = threading.Lock()
        self._current: Optional[Tuple[str, int, int]] = None
        self._paused = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    # -- lease lifecycle --------------------------------------------------------------

    def begin(self, scope: str, chunk_index: int, token: int) -> None:
        """Start beating for one lease (beats immediately, then periodically)."""
        with self._lock:
            self._current = (scope, chunk_index, token)
        self._beat()

    def end(self) -> None:
        with self._lock:
            self._current = None

    # -- fault injection --------------------------------------------------------------

    def pause(self) -> None:
        """Suppress beats without dropping the lease — the 'hung worker'
        fault: the parent sees silence, reclaims, and this worker becomes a
        zombie whose eventual result must be fenced off."""
        with self._lock:
            self._paused = True

    def resume(self) -> None:
        with self._lock:
            self._paused = False

    # -- internals --------------------------------------------------------------------

    def _beat(self) -> None:
        with self._lock:
            current = None if self._paused else self._current
        if current is not None:
            self._emit(*current)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._beat()
