"""The leased work queue: chunk grants, heartbeats, reclaim, poison, commit.

A :class:`LeaseQueue` owns the lease state machine of one campaign run.  It
lives in the supervising parent process only (workers see tokens, never the
queue) and keeps an authoritative in-memory mirror of every chunk's lease,
writing state transitions through to the campaign store's ``leases`` table
so a crashed run resumes with its attempt counts, fencing tokens, and
poison quarantine intact.

The state machine per ``(scope, chunk)``::

    pending ──acquire──▶ leased ──complete──▶ done
       ▲                   │
       │ reclaim (deadline │ passed, or owner known dead)
       └───────────────────┘         attempts < max_attempts
                           │
                           └──reclaim at attempt budget──▶ poisoned

* **Grants are fenced**: every ``acquire`` bumps a campaign-wide monotonic
  token.  ``complete`` (and the store's ``commit_chunk`` beneath it) accept
  a result only while the chunk is still ``leased`` under exactly that
  token, so a reclaimed-and-regranted chunk silently discards its zombie's
  late result.
* **Deadlines are run-local**: measured on the injected monotonic ``clock``
  and renewable by heartbeat; they are never persisted (a dead run's
  deadlines mean nothing — its ``leased`` rows simply load as ``pending``,
  attempts preserved).
* **Retry is bounded**: each reclaim increments ``attempts`` and delays the
  next grant by exponential backoff with seeded jitter; at ``max_attempts``
  the chunk is quarantined as ``poisoned`` and never granted again until
  explicitly requeued (:meth:`LeaseQueue.drain_poisoned`).
* **Commits stay contiguous**: results may finish out of order, so accepted
  chunks buffer until the scope's cursor reaches them and flush through
  ``commit_chunk(..., lease_token=...)`` in stream order — the store's
  contiguous-cursor protocol, unchanged.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..explorer.worker import ScheduleRecord
from ..persist.records import LeaseRecord
from ..persist.store import CampaignStore

__all__ = ["Lease", "ReclaimedLease", "PoisonedChunk", "LeaseQueue"]


@dataclass(frozen=True)
class Lease:
    """One granted chunk lease, as handed to a worker's supervisor."""

    scope: str
    chunk_index: int
    token: int
    deadline: float
    attempts: int


@dataclass(frozen=True)
class ReclaimedLease:
    """One lease taken back from a missing worker (expiry or known death)."""

    scope: str
    chunk_index: int
    token: int
    attempts: int
    poisoned: bool


@dataclass(frozen=True)
class PoisonedChunk:
    """One quarantined chunk: its retry budget is spent."""

    scope: str
    chunk_index: int
    attempts: int


@dataclass
class _Unit:
    """In-memory lease state of one (scope, chunk)."""

    state: str = "pending"          #: pending | leased | done | poisoned
    token: int = 0
    owner: Optional[str] = None
    attempts: int = 0
    deadline: float = 0.0           #: meaningful only while leased
    not_before: float = 0.0         #: retry backoff gate while pending
    flushed: bool = False           #: done AND durably committed


class LeaseQueue:
    """Parent-side lease manager over one campaign's chunk stream."""

    def __init__(self, store: CampaignStore, campaign_id: str, *,
                 lease_duration: float = 5.0,
                 max_attempts: int = 5,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 jitter_seed: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.store = store
        self.campaign_id = campaign_id
        self.lease_duration = float(lease_duration)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._rng = random.Random(jitter_seed)
        self._clock = clock
        self._scopes: List[str] = []                       #: registration order
        self._units: Dict[Tuple[str, int], _Unit] = {}
        self._totals: Dict[str, int] = {}
        self._cursors: Dict[str, int] = {}                 #: store flush cursor
        self._buffers: Dict[str, Dict[int, Tuple[Tuple[ScheduleRecord, ...],
                                                 int]]] = {}
        self._persisted = store.load_leases(campaign_id)
        self._next_token = 1 + max(
            (lease.token for lease in self._persisted.values()), default=0)
        #: Invoked with the running commit ordinal before each store flush
        #: (the fault harness's slow-commit injection point).
        self.commit_hook: Optional[Callable[[int], None]] = None
        self._commit_ordinal = 0
        self.stats: Dict[str, int] = {
            "leases_granted": 0, "leases_renewed": 0, "renew_rejected": 0,
            "leases_reclaimed": 0, "leases_released": 0, "fenced_results": 0,
            "chunks_poisoned": 0, "chunks_requeued": 0,
            "chunks_committed": 0, "records_committed": 0,
        }

    # -- registration -----------------------------------------------------------------

    def register_scope(self, scope: str, total_chunks: int,
                       cursor: int = 0) -> None:
        """Declare one scope's chunk range; chunks below ``cursor`` are done.

        Persisted lease rows (from an earlier, possibly crashed, run) seed
        the in-memory state: ``poisoned`` rows stay quarantined, ``leased``
        rows load as ``pending`` (their runner is gone; attempts and tokens
        survive so every old token stays permanently stale), and ``done``
        rows below the cursor are already flushed.
        """
        if scope in self._totals:
            raise ValueError(f"scope {scope!r} registered twice")
        self._scopes.append(scope)
        self._totals[scope] = int(total_chunks)
        self._cursors[scope] = int(cursor)
        self._buffers[scope] = {}
        for chunk in range(total_chunks):
            unit = _Unit()
            stored = self._persisted.get((scope, chunk))
            if stored is not None:
                unit.token = stored.token
                unit.owner = stored.owner
                unit.attempts = stored.attempts
                if stored.state == "poisoned":
                    unit.state = "poisoned"
            if chunk < cursor:
                unit.state = "done"
                unit.flushed = True
            self._units[(scope, chunk)] = unit

    # -- grants -----------------------------------------------------------------------

    def acquire(self, owner: str) -> Optional[Lease]:
        """Grant the earliest eligible pending chunk, or ``None``.

        Scopes are served in registration order and chunks in stream order,
        which keeps the out-of-order commit buffer shallow (at most one
        chunk per outstanding worker).
        """
        now = self._clock()
        for scope in self._scopes:
            for chunk in range(self._cursors[scope], self._totals[scope]):
                unit = self._units[(scope, chunk)]
                if unit.state != "pending" or unit.not_before > now:
                    continue
                unit.state = "leased"
                unit.token = self._next_token
                self._next_token += 1
                unit.owner = owner
                unit.deadline = now + self.lease_duration
                self._put(scope, chunk, unit, "leased")
                self.stats["leases_granted"] += 1
                return Lease(scope, chunk, unit.token, unit.deadline,
                             unit.attempts)
        return None

    def next_ready_delay(self) -> Optional[float]:
        """Seconds until the earliest backoff-gated pending chunk is grantable.

        ``0.0`` when something is grantable now; ``None`` when nothing is
        pending at all (everything is leased, done, or poisoned).
        """
        now = self._clock()
        best: Optional[float] = None
        for unit in self._units.values():
            if unit.state != "pending":
                continue
            wait = max(0.0, unit.not_before - now)
            if best is None or wait < best:
                best = wait
            if best == 0.0:
                break
        return best

    # -- heartbeats -------------------------------------------------------------------

    def renew(self, scope: str, chunk_index: int, token: int) -> bool:
        """Extend the deadline of a live lease.  Strict: an expired lease
        cannot be renewed even before anyone reclaims it — the worker must
        treat a failed renewal as lease loss."""
        unit = self._units.get((scope, chunk_index))
        now = self._clock()
        if unit is None or unit.state != "leased" or unit.token != token \
                or unit.deadline <= now:
            self.stats["renew_rejected"] += 1
            return False
        unit.deadline = now + self.lease_duration
        self.stats["leases_renewed"] += 1
        return True

    def release(self, scope: str, chunk_index: int, token: int) -> bool:
        """Voluntarily return a lease un-executed (no attempt penalty)."""
        unit = self._units.get((scope, chunk_index))
        if unit is None or unit.state != "leased" or unit.token != token:
            return False
        unit.state = "pending"
        unit.owner = None
        unit.not_before = self._clock()
        self._put(scope, chunk_index, unit, "pending")
        self.stats["leases_released"] += 1
        return True

    # -- reclaim and quarantine -------------------------------------------------------

    def reclaim_expired(self) -> List[ReclaimedLease]:
        """Take back every lease whose deadline passed; backoff or poison."""
        now = self._clock()
        reclaimed: List[ReclaimedLease] = []
        for (scope, chunk), unit in self._units.items():
            if unit.state == "leased" and unit.deadline <= now:
                reclaimed.append(self._reclaim(scope, chunk, unit))
        return reclaimed

    def force_expire(self, scope: str, chunk_index: int,
                     token: int) -> Optional[ReclaimedLease]:
        """Reclaim one lease immediately (its owner is known dead)."""
        unit = self._units.get((scope, chunk_index))
        if unit is None or unit.state != "leased" or unit.token != token:
            return None
        return self._reclaim(scope, chunk_index, unit)

    def _reclaim(self, scope: str, chunk: int, unit: _Unit) -> ReclaimedLease:
        token = unit.token
        unit.attempts += 1
        unit.owner = None
        self.stats["leases_reclaimed"] += 1
        if unit.attempts >= self.max_attempts:
            unit.state = "poisoned"
            self._put(scope, chunk, unit, "poisoned")
            self.stats["chunks_poisoned"] += 1
            return ReclaimedLease(scope, chunk, token, unit.attempts, True)
        unit.state = "pending"
        unit.not_before = self._clock() + self._backoff(unit.attempts)
        self._put(scope, chunk, unit, "pending")
        return ReclaimedLease(scope, chunk, token, unit.attempts, False)

    def _backoff(self, attempts: int) -> float:
        """``base * 2^(attempts-1)`` capped, scaled by seeded jitter in
        [0.5, 1.5) — retries spread out instead of thundering back."""
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempts - 1)))
        return delay * (0.5 + self._rng.random())

    def poisoned(self) -> Tuple[PoisonedChunk, ...]:
        return tuple(PoisonedChunk(scope, chunk, unit.attempts)
                     for (scope, chunk), unit in sorted(self._units.items())
                     if unit.state == "poisoned")

    def drain_poisoned(self, requeue: bool = False) -> Tuple[PoisonedChunk, ...]:
        """The quarantined set; with ``requeue`` they re-enter the queue with
        a fresh attempt budget (an operator decision, never automatic)."""
        drained = self.poisoned()
        if requeue:
            for poisoned in drained:
                unit = self._units[(poisoned.scope, poisoned.chunk_index)]
                unit.state = "pending"
                unit.attempts = 0
                unit.not_before = self._clock()
                self._put(poisoned.scope, poisoned.chunk_index, unit, "pending")
                self.stats["chunks_requeued"] += 1
        return drained

    # -- results ----------------------------------------------------------------------

    def complete(self, scope: str, chunk_index: int, token: int,
                 records: Sequence[ScheduleRecord]) -> bool:
        """Accept one chunk result if its lease is still current.

        The fencing rule, applied twice: here against the in-memory mirror
        (``leased`` under exactly this token — a reclaimed chunk is
        ``pending`` or regranted under a newer token, so the zombie loses
        either way), and again inside the store's commit transaction when
        the buffered chunk flushes.  Accepted chunks buffer until the scope
        cursor reaches them, then flush contiguously.
        """
        unit = self._units.get((scope, chunk_index))
        if unit is None or unit.state != "leased" or unit.token != token:
            self.stats["fenced_results"] += 1
            return False
        unit.state = "done"
        self._buffers[scope][chunk_index] = (tuple(records), token)
        self._flush(scope)
        return True

    def _flush(self, scope: str) -> None:
        buffers = self._buffers[scope]
        cursor = self._cursors[scope]
        while cursor in buffers:
            records, token = buffers.pop(cursor)
            if self.commit_hook is not None:
                self.commit_hook(self._commit_ordinal)
            self.store.commit_chunk(self.campaign_id, scope, cursor, records,
                                    lease_token=token)
            self._commit_ordinal += 1
            unit = self._units[(scope, cursor)]
            unit.flushed = True
            self.stats["chunks_committed"] += 1
            self.stats["records_committed"] += len(records)
            cursor += 1
        self._cursors[scope] = cursor

    # -- progress ---------------------------------------------------------------------

    def scope_committed(self, scope: str) -> bool:
        """Every chunk of the scope durably committed."""
        return self._cursors[scope] >= self._totals[scope]

    def all_committed(self) -> bool:
        return all(self.scope_committed(scope) for scope in self._scopes)

    def outstanding(self) -> int:
        """Currently leased chunks."""
        return sum(1 for unit in self._units.values() if unit.state == "leased")

    def has_open_work(self) -> bool:
        """Anything still grantable or in flight (pending, leased, or an
        accepted-but-unflushed buffer waiting behind a gap)."""
        return any(unit.state in ("pending", "leased")
                   for unit in self._units.values())

    def lease_stats(self) -> Dict[str, int]:
        return dict(self.stats)

    # -- persistence ------------------------------------------------------------------

    def _put(self, scope: str, chunk: int, unit: _Unit, state: str) -> None:
        self.store.put_lease(self.campaign_id, LeaseRecord(
            scope=scope, chunk_index=chunk, state=state, token=unit.token,
            owner=unit.owner, attempts=unit.attempts))
