"""``python -m repro.distrib.cli`` — fault-tolerant distributed campaigns.

Subcommands:

* ``run``    — run (or resume) a campaign under the leased work queue with
  N supervised worker processes, optionally injecting faults
  (``--faults kill:worker=0:ordinal=2 --faults hang:worker=1:duration=0.8``
  or a whole deterministic schedule via ``--fault-seed``).  Prints the
  coverage report rebuilt from the store and exits nonzero when the
  campaign could not fully commit (poisoned chunks, timeout).
* ``verify`` — run the same campaign distributed *and* serially in-process,
  then byte-diff the two coverage reports and fingerprints; the exit code
  is the diff.

The fault flags exist for chaos testing and demos; they change wall-clock
and retry counters only.  Records are a pure function of the campaign
config — that is the whole point, and ``verify`` is the proof.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

from ..persist.cli import _levels_from_arg, _parse_param
from ..persist.sqlite_store import SqliteStore
from ..persist.store import StoreError
from ..workloads.program_sets import ProgramSetSpec, available_program_sets
from .faults import FaultPlan
from .runner import CampaignRunner

__all__ = ["main"]


def _spec_from_args(args: argparse.Namespace) -> ProgramSetSpec:
    params: Dict[str, Any] = {}
    for item in args.set or []:
        if "=" not in item:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        key, _, value = item.partition("=")
        params[key] = _parse_param(value)
    return ProgramSetSpec.make(args.program_set, **params)


def _plan_from_args(args: argparse.Namespace) -> FaultPlan:
    if args.faults and args.fault_seed is not None:
        raise SystemExit("--faults and --fault-seed are mutually exclusive")
    if args.fault_seed is not None:
        return FaultPlan.random(args.fault_seed, workers=int(args.workers))
    try:
        return FaultPlan.parse(args.faults or [])
    except ValueError as error:
        raise SystemExit(f"bad --faults value: {error}")


def _runner(store, spec, args: argparse.Namespace,
            plan: FaultPlan) -> CampaignRunner:
    levels = _levels_from_arg(args.levels)
    kwargs: Dict[str, Any] = dict(
        mode=args.mode, max_schedules=args.max_schedules, seed=args.seed,
        chunk_size=args.chunk_size, workers=int(args.workers),
        campaign_id=args.campaign, lease_duration=args.lease_duration,
        heartbeat_interval=args.heartbeat_interval,
        max_attempts=args.max_attempts, batch_kernel=args.batch_kernel,
        faults=plan, requeue_poisoned=args.requeue_poisoned,
        deadline_s=args.deadline)
    if levels is not None:
        kwargs["levels"] = levels
    return CampaignRunner(store, spec, **kwargs)


def _describe(result) -> str:
    lines = [f"campaign {result.campaign_id}: "
             f"{'complete' if result.success else 'INCOMPLETE'} in "
             f"{result.duration:.2f}s — {result.committed_chunks} chunks, "
             f"{result.committed_records} records committed"]
    if result.respawns:
        lines.append(f"  workers respawned: {result.respawns}")
    if result.fenced_results:
        lines.append(f"  zombie results fenced: {result.fenced_results}")
    if result.recovery_latency_s is not None:
        lines.append(f"  worst recovery latency: "
                     f"{result.recovery_latency_s * 1000:.0f} ms")
    if result.timed_out:
        lines.append("  deadline exceeded before the campaign finished")
    for poisoned in result.poisoned:
        lines.append(f"  poisoned: [{poisoned.scope}] chunk "
                     f"{poisoned.chunk_index} after {poisoned.attempts} "
                     f"attempts (requeue with --requeue-poisoned)")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> int:
    from ..analysis.coverage import coverage_report_from_store

    spec = _spec_from_args(args)
    plan = _plan_from_args(args)
    store = SqliteStore(args.store)
    try:
        runner = _runner(store, spec, args, plan)
        result = runner.run()
        print(_describe(result))
        if args.stats:
            print(json.dumps(result.stats, indent=2, sort_keys=True))
        if result.success:
            report = coverage_report_from_store(store, result.campaign_id,
                                                levels=runner.levels)
            print(report.render(title=f"campaign {result.campaign_id}"))
        return 0 if result.success else 1
    finally:
        store.close()


def _cmd_verify(args: argparse.Namespace) -> int:
    from .faults import run_with_faults, serial_reference

    spec = _spec_from_args(args)
    plan = _plan_from_args(args)
    levels = _levels_from_arg(args.levels)
    control_render, control_fingerprint = serial_reference(
        spec, levels, mode=args.mode, max_schedules=args.max_schedules,
        seed=args.seed, chunk_size=args.chunk_size,
        batch_kernel=args.batch_kernel)
    store = SqliteStore(args.store)
    try:
        result, render, fingerprint = run_with_faults(
            store, spec, levels, plan, mode=args.mode,
            max_schedules=args.max_schedules, seed=args.seed,
            chunk_size=args.chunk_size, workers=int(args.workers),
            campaign_id=args.campaign, lease_duration=args.lease_duration,
            heartbeat_interval=args.heartbeat_interval,
            max_attempts=args.max_attempts, batch_kernel=args.batch_kernel,
            deadline_s=args.deadline)
    finally:
        store.close()
    print(_describe(result))
    if not result.success:
        return 1
    if render != control_render or fingerprint != control_fingerprint:
        print("MISMATCH: distributed run diverged from the serial control",
              file=sys.stderr)
        return 1
    print(f"byte-identical to serial: fingerprint {fingerprint[:16]}…")
    return 0


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", required=True, help="SQLite store path")
    parser.add_argument("--program-set", required=True,
                        help=f"one of: {', '.join(available_program_sets())}")
    parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                        help="program-set parameter (repeatable; JSON values)")
    parser.add_argument("--campaign", default=None,
                        help="campaign id (default: derived from the config)")
    parser.add_argument("--mode", default="auto",
                        choices=["auto", "exhaustive", "sample"])
    parser.add_argument("--max-schedules", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chunk-size", type=int, default=64)
    parser.add_argument("--levels", default=None,
                        help="comma-separated isolation levels")
    parser.add_argument("--workers", type=int, default=2,
                        help="supervised worker processes (default: 2)")
    parser.add_argument("--faults", action="append", metavar="SPEC",
                        help="inject one fault, e.g. kill:worker=0:ordinal=2, "
                             "hang:worker=1:duration=0.8, "
                             "slow-commit:ordinal=3:duration=0.2, "
                             "sqlite-lock:ordinal=2:count=2 (repeatable)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="derive a whole deterministic fault schedule "
                             "from this seed instead of --faults")
    parser.add_argument("--lease-duration", type=float, default=2.0)
    parser.add_argument("--heartbeat-interval", type=float, default=0.5)
    parser.add_argument("--max-attempts", type=int, default=5,
                        help="executions before a chunk is quarantined "
                             "as poisoned")
    parser.add_argument("--batch-kernel", default=None,
                        choices=[None, "auto", "numpy"],
                        help="batch-kernel override passed through to workers")
    parser.add_argument("--requeue-poisoned", action="store_true",
                        help="reset previously poisoned chunks before running")
    parser.add_argument("--deadline", type=float, default=300.0,
                        help="give up after this many seconds (exit 1)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib.cli",
        description="Fault-tolerant distributed exploration campaigns.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a campaign with N leased workers")
    _add_run_flags(run)
    run.add_argument("--stats", action="store_true",
                     help="also print lease/store/worker counters as JSON")
    run.set_defaults(func=_cmd_run)

    verify = sub.add_parser(
        "verify", help="byte-diff a distributed run against a serial control")
    _add_run_flags(verify)
    verify.set_defaults(func=_cmd_verify)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
