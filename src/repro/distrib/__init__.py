"""Fault-tolerant distributed campaigns: leased work queues over a store.

``repro.distrib`` scales a persistent exploration campaign past one
``multiprocessing.Pool``: the schedule stream's chunks become *leases* in a
durable work queue (:mod:`~repro.distrib.queue`), independent worker
processes (:mod:`~repro.distrib.runner` — spawned directly, never pooled)
pull leases, execute them through the ordinary trie/batch-kernel path, and
their results commit under the parent-only protocol of :mod:`repro.persist`
extended with *lease fencing*: every grant carries a fresh monotonic token,
and ``commit_chunk`` rejects any token that is no longer current inside the
commit transaction itself — a zombie worker whose lease expired and was
regranted can never double-commit, no matter when it wakes up.

Graceful degradation is the contract: lose any subset of workers at any
time (SIGKILL, hang, slow I/O, transient SQLite lock) and the campaign
finishes correct — byte-identical coverage to a fault-free serial run —
merely slower.  A chunk that keeps failing retries with exponential
backoff and seeded jitter until its attempt budget is spent, then is
quarantined as *poisoned* so one bad chunk cannot stall the campaign; the
poisoned set is reported, drainable, and requeueable.

The determinism story is unchanged from the explorer's: records are a pure
function of ``(spec, levels, mode, max_schedules, seed, reduction)``; the
worker count, the fault schedule, and the lease timing only move wall-clock
time.  :mod:`~repro.distrib.faults` turns that claim into a test harness —
deterministic seeded fault plans (worker SIGKILL, heartbeat hangs, slow
commits, injected SQLite lock errors) under which the final report must
stay byte-identical.
"""

from .faults import FaultPlan, FaultSpec
from .queue import Lease, LeaseQueue, PoisonedChunk, ReclaimedLease
from .runner import CampaignRunner, CampaignRunResult

__all__ = [
    "Lease",
    "LeaseQueue",
    "PoisonedChunk",
    "ReclaimedLease",
    "FaultPlan",
    "FaultSpec",
    "CampaignRunner",
    "CampaignRunResult",
]
