"""Deterministic fault injection: seeded plans, injectors, and the harness.

Everything here exists to prove one sentence: *under any schedule of worker
SIGKILLs, heartbeat hangs, slow commits, and transient SQLite lock errors,
the campaign's final coverage report is byte-identical to a fault-free
serial run.*  Faults fire at **seeded points**, never at random runtime
moments — a :class:`FaultPlan` is a pure function of its seed, so every
chaos run is replayable.

Fault kinds and where they bite:

* ``kill`` — the worker SIGKILLs itself mid-lease (before or after chunk
  execution, per ``position``).  Exercises death detection, immediate lease
  reclaim, and respawn.
* ``hang`` — the worker pauses heartbeats for ``duration`` seconds, then
  resumes and finishes the chunk.  Exercises deadline expiry, reclaim,
  re-execution elsewhere, and the fencing rejection of the zombie's late
  result.
* ``slow-commit`` — the parent sleeps ``duration`` seconds before its Nth
  chunk flush.  Exercises lease renewal under a stalled commit pipeline.
* ``sqlite-lock`` — the store's write transaction fails ``count``
  consecutive times with a transient ``database is locked`` error at its
  Nth transaction, *beneath* the busy-retry wrapper.  Exercises the
  seeded-jitter retry path (a no-op on the in-memory backend).

Worker faults are addressed by ``(worker, incarnation, ordinal)`` — the
ordinal counts chunks executed by that specific incarnation — so a chunk
that died with incarnation ``k`` retries cleanly on incarnation ``k+1``
and the matrix converges instead of poisoning.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "WorkerFaultInjector",
    "busy_hook_for",
    "commit_hook_for",
    "serial_reference",
    "run_with_faults",
    "run_fault_matrix",
]

_WORKER_KINDS = ("kill", "hang")
_PARENT_KINDS = ("slow-commit", "sqlite-lock")
KINDS = _WORKER_KINDS + _PARENT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``ordinal`` is the firing point: for worker faults, the Nth chunk that
    ``(worker, incarnation)`` executes; for parent faults, the Nth chunk
    flush (``slow-commit``) or the Nth store write transaction
    (``sqlite-lock``).
    """

    kind: str
    worker: int = 0
    incarnation: int = 0
    ordinal: int = 0
    duration: float = 0.0       #: hang / slow-commit seconds
    count: int = 1              #: consecutive injected lock failures
    position: str = "pre"       #: worker faults: before or after execution

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {KINDS})")
        if self.position not in ("pre", "post"):
            raise ValueError(f"position must be 'pre' or 'post', "
                             f"got {self.position!r}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.duration < 0.0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if min(self.worker, self.incarnation, self.ordinal) < 0:
            raise ValueError("worker, incarnation, and ordinal must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI form ``kind[:key=value]...``.

        Examples: ``kill:worker=0:ordinal=2``,
        ``hang:worker=1:ordinal=0:duration=0.8``,
        ``slow-commit:ordinal=3:duration=0.2``,
        ``sqlite-lock:ordinal=2:count=2``.
        """
        head, _, rest = text.partition(":")
        fields: Dict[str, object] = {"kind": head}
        for part in filter(None, rest.split(":")):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"bad fault field {part!r} in {text!r} "
                                 f"(expected key=value)")
            if key in ("worker", "incarnation", "ordinal", "count"):
                fields[key] = int(value)
            elif key == "duration":
                fields[key] = float(value)
            elif key == "position":
                fields[key] = value
            else:
                raise ValueError(f"unknown fault field {key!r} in {text!r}")
        return cls(**fields)  # type: ignore[arg-type]

    def encode(self) -> str:
        parts = [self.kind]
        for name in ("worker", "incarnation", "ordinal", "count"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.duration:
            parts.append(f"duration={self.duration}")
        if self.position != "pre":
            parts.append(f"position={self.position}")
        return ":".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one campaign run."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def parse(cls, entries: Sequence[str]) -> "FaultPlan":
        return cls(tuple(FaultSpec.parse(entry) for entry in entries))

    @classmethod
    def random(cls, seed: int, workers: int = 2, chunks: int = 8,
               kinds: Sequence[str] = KINDS,
               hang_duration: float = 0.8,
               slow_commit: float = 0.15) -> "FaultPlan":
        """One fault of each requested kind at seeded points.

        A pure function of its arguments: the chaos matrix runs
        ``FaultPlan.random(seed, ...)`` for several seeds and every run is
        replayable from the seed alone.  Worker faults target incarnation 0
        (each kind at most once per worker slot, so the respawned
        incarnation always finishes the retried chunk).
        """
        rng = random.Random(seed)
        span = max(1, chunks // max(1, workers))
        specs: List[FaultSpec] = []
        for kind in kinds:
            ordinal = rng.randrange(span)
            if kind == "kill":
                specs.append(FaultSpec(kind, worker=rng.randrange(workers),
                                       ordinal=ordinal,
                                       position=rng.choice(("pre", "post"))))
            elif kind == "hang":
                specs.append(FaultSpec(kind, worker=rng.randrange(workers),
                                       ordinal=ordinal,
                                       duration=hang_duration))
            elif kind == "slow-commit":
                specs.append(FaultSpec(kind, ordinal=rng.randrange(chunks),
                                       duration=slow_commit))
            else:
                specs.append(FaultSpec(kind, ordinal=rng.randrange(chunks),
                                       count=1 + rng.randrange(2)))
        return cls(tuple(specs))

    def worker_specs(self, worker: int,
                     incarnation: int) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs
                     if spec.kind in _WORKER_KINDS and spec.worker == worker
                     and spec.incarnation == incarnation)

    def parent_specs(self, kind: str) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.kind == kind)

    def encode(self) -> Tuple[str, ...]:
        return tuple(spec.encode() for spec in self.specs)


class WorkerFaultInjector:
    """Fires a worker's scheduled faults at its chunk ordinals (in-process)."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self._by_point: Dict[Tuple[int, str], List[FaultSpec]] = {}
        for spec in specs:
            self._by_point.setdefault((spec.ordinal, spec.position),
                                      []).append(spec)

    def fire(self, ordinal: int, position: str, heartbeat) -> None:
        for spec in self._by_point.get((ordinal, position), ()):
            if spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif spec.kind == "hang":
                heartbeat.pause()
                time.sleep(spec.duration)
                heartbeat.resume()


def busy_hook_for(specs: Sequence[FaultSpec]) -> Optional[Callable[[], bool]]:
    """A ``SqliteStore.busy_fault_hook`` firing the sqlite-lock faults.

    The hook is consulted once per write-transaction attempt; at each
    scheduled transaction ordinal it fails ``count`` consecutive attempts,
    which the store's bounded busy-retry then absorbs.
    """
    schedule = {spec.ordinal: spec.count for spec in specs
                if spec.kind == "sqlite-lock"}
    if not schedule:
        return None
    state = {"txn": 0, "pending": 0}

    def hook() -> bool:
        if state["pending"] > 0:
            state["pending"] -= 1
            return True
        ordinal = state["txn"]
        state["txn"] += 1
        remaining = schedule.get(ordinal, 0)
        if remaining > 0:
            state["pending"] = remaining - 1
            return True
        return False

    return hook


def commit_hook_for(specs: Sequence[FaultSpec],
                    ) -> Optional[Callable[[int], None]]:
    """A ``LeaseQueue.commit_hook`` sleeping before scheduled chunk flushes."""
    schedule = {spec.ordinal: spec.duration for spec in specs
                if spec.kind == "slow-commit"}
    if not schedule:
        return None

    def hook(ordinal: int) -> None:
        delay = schedule.get(ordinal)
        if delay:
            time.sleep(delay)

    return hook


# -- the byte-identity harness --------------------------------------------------------


def serial_reference(spec, levels, mode: str = "auto",
                     max_schedules: int = 1000, seed: int = 0,
                     chunk_size: int = 64,
                     batch_kernel: Optional[str] = None) -> Tuple[str, str]:
    """The fault-free serial control: (rendered coverage report, fingerprint).

    Runs a plain in-process ``explore()`` with the same record-affecting
    inputs the distributed runner uses; its render and fingerprint are the
    bytes every chaos run must reproduce.
    """
    from ..analysis.coverage import build_coverage_report
    from ..explorer import ExploreOptions, explore
    from ..explorer.explorer import DEFAULT_LEVELS
    from ..workloads.program_sets import ProgramSetSpec
    levels = tuple(levels) if levels is not None else DEFAULT_LEVELS
    spec = ProgramSetSpec.make(spec.name, **spec.kwargs())
    result = explore(spec, ExploreOptions(
        levels=levels, mode=mode, max_schedules=max_schedules, seed=seed,
        chunk_size=chunk_size, batch_kernel=batch_kernel))
    return build_coverage_report(result).render(), result.fingerprint()


def run_with_faults(store, spec, levels, plan: FaultPlan, *,
                    mode: str = "auto", max_schedules: int = 1000,
                    seed: int = 0, chunk_size: int = 64, workers: int = 2,
                    campaign_id: Optional[str] = None,
                    lease_duration: float = 0.4,
                    heartbeat_interval: float = 0.1,
                    max_attempts: int = 6,
                    batch_kernel: Optional[str] = None,
                    deadline_s: float = 120.0):
    """One distributed campaign under one fault plan.

    Returns ``(runner_result, rendered_report, fingerprint)`` where report
    and fingerprint are rebuilt purely from the store's rows.
    """
    from ..analysis.coverage import coverage_report_from_store
    from ..explorer.explorer import DEFAULT_LEVELS
    from ..persist.analytics import fingerprint_from_store
    from .runner import CampaignRunner
    levels = tuple(levels) if levels is not None else DEFAULT_LEVELS
    runner = CampaignRunner(
        store, spec, levels=levels, mode=mode, max_schedules=max_schedules,
        seed=seed, chunk_size=chunk_size, workers=workers,
        campaign_id=campaign_id, lease_duration=lease_duration,
        heartbeat_interval=heartbeat_interval, max_attempts=max_attempts,
        batch_kernel=batch_kernel, faults=plan, deadline_s=deadline_s)
    result = runner.run()
    report = coverage_report_from_store(store, result.campaign_id,
                                        levels=levels)
    return result, report.render(), fingerprint_from_store(
        store, result.campaign_id)


def run_fault_matrix(spec, levels, plans: Sequence[FaultPlan],
                     store_factories: Sequence[Tuple[str, Callable[[int], object]]],
                     *, mode: str = "auto", max_schedules: int = 1000,
                     seed: int = 0, chunk_size: int = 64, workers: int = 2,
                     lease_duration: float = 0.4,
                     heartbeat_interval: float = 0.1,
                     max_attempts: int = 6,
                     batch_kernel: Optional[str] = None,
                     deadline_s: float = 120.0) -> List[Dict[str, object]]:
    """Every plan on every backend, byte-diffed against the serial control.

    ``store_factories`` is ``[(backend_name, factory(run_index) -> store)]``
    — a fresh store per run.  Returns one result dict per (plan, backend)
    leg with ``byte_equal`` verdicts; raises nothing itself so the caller
    (test or CI script) decides how to fail.
    """
    control_render, control_fingerprint = serial_reference(
        spec, levels, mode=mode, max_schedules=max_schedules, seed=seed,
        chunk_size=chunk_size, batch_kernel=batch_kernel)
    legs: List[Dict[str, object]] = []
    run_index = 0
    for plan_index, plan in enumerate(plans):
        for backend, factory in store_factories:
            store = factory(run_index)
            run_index += 1
            try:
                result, render, fingerprint = run_with_faults(
                    store, spec, levels, plan, mode=mode,
                    max_schedules=max_schedules, seed=seed,
                    chunk_size=chunk_size, workers=workers,
                    lease_duration=lease_duration,
                    heartbeat_interval=heartbeat_interval,
                    max_attempts=max_attempts, batch_kernel=batch_kernel,
                    deadline_s=deadline_s)
            finally:
                store.close()
            legs.append({
                "plan_index": plan_index,
                "plan": list(plan.encode()),
                "backend": backend,
                "campaign_id": result.campaign_id,
                "success": result.success,
                "poisoned": [(p.scope, p.chunk_index) for p in result.poisoned],
                "respawns": result.respawns,
                "fenced_results": result.fenced_results,
                "recovery_latency_s": result.recovery_latency_s,
                "byte_equal": (render == control_render
                               and fingerprint == control_fingerprint),
                "stats": result.stats,
            })
    return legs

