"""Table 4 — the headline result: isolation types characterized by the anomalies they allow.

Runs every anomaly scenario (P0, P1, P4C, P4, P2, P3, A5A, A5B) against every
engine (Locking READ UNCOMMITTED through SERIALIZABLE, Cursor Stability, and
Snapshot Isolation), aggregates the per-variant outcomes into Possible /
Not Possible / Sometimes Possible, and compares the resulting matrix to the
paper's Table 4 cell for cell.  The two extension rows (GLPT Degree 0 and
Oracle Read Consistency) are reported alongside.
"""

from __future__ import annotations

import pytest

from repro.analysis.matrix import (
    EXPECTED_TABLE_4,
    EXTENSION_EXPECTATIONS,
    TABLE_4_COLUMNS,
    compute_table4,
    compute_table4_row,
)
from repro.analysis.report import matrix_matches, render_comparison, render_possibility_matrix
from repro.testbed import engine_factory


def test_table4_full_matrix(benchmark, print_report):
    measured = benchmark(compute_table4)
    ok, mismatches = matrix_matches(EXPECTED_TABLE_4, measured)
    print_report(
        "Table 4: paper (expected) vs measured — mismatching cells would be marked '!'",
        render_comparison(EXPECTED_TABLE_4, measured, TABLE_4_COLUMNS),
    )
    assert ok, "\n".join(mismatches)


@pytest.mark.parametrize("level", sorted(EXTENSION_EXPECTATIONS, key=lambda lvl: lvl.value),
                         ids=lambda level: level.value)
def test_table4_extension_rows(benchmark, print_report, level):
    measured = benchmark(lambda: compute_table4_row(engine_factory(level)))
    print_report(
        f"Table 4 extension row: {level.value}",
        render_possibility_matrix({level: measured}, TABLE_4_COLUMNS),
    )
    assert measured == EXTENSION_EXPECTATIONS[level]


def test_table4_snapshot_isolation_row_alone(benchmark, print_report):
    """The row the paper spends Section 4.2 on, timed in isolation."""
    from repro.core.isolation import IsolationLevelName
    level = IsolationLevelName.SNAPSHOT_ISOLATION
    measured = benchmark(lambda: compute_table4_row(engine_factory(level)))
    print_report(
        "Snapshot Isolation row",
        render_possibility_matrix({level: measured}, TABLE_4_COLUMNS),
    )
    assert measured == EXPECTED_TABLE_4[level]
