"""Ablations of the design choices DESIGN.md calls out.

* Strict (A1/A2/A3) vs broad (P1/P2/P3) interpretations: how many
  non-serializable histories from a mixed corpus each admits — the paper's
  core quantitative argument for the broad reading.
* Predicate locks vs item-only locks at SERIALIZABLE: the phantom scenarios
  get through without predicate locking.
* First-committer-wins vs first-writer-wins (SI vs Oracle Read Consistency)
  and FCW switched off entirely: who loses updates.
* Long vs short write locks (Degree 1 vs Degree 0): dirty writes and the
  recoverability hazard.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.dependency import is_serializable
from repro.core.isolation import (
    ANSI_BROAD_LEVELS,
    ANSI_STRICT_LEVELS,
    IsolationLevelName,
    Possibility,
)
from repro.analysis.matrix import default_history_corpus
from repro.locking.policy import LockingPolicy, LockRule
from repro.locking.modes import LockDuration, LockMode
from repro.testbed import engine_factory
from repro.workloads.scenarios import evaluate_scenario, scenario_by_code


def test_strict_vs_broad_interpretation(benchmark, print_report):
    """Count non-serializable corpus histories admitted by each reading of
    'ANOMALY SERIALIZABLE'."""
    corpus = [h for h in default_history_corpus(seed=29, count=400)
              if not is_serializable(h)]
    strict = ANSI_STRICT_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]
    broad = ANSI_BROAD_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]

    def measure():
        return (
            sum(1 for h in corpus if strict.permits(h)),
            sum(1 for h in corpus if broad.permits(h)),
        )

    admitted_strict, admitted_broad = benchmark(measure)
    print_report(
        "Non-serializable histories admitted by each interpretation "
        f"(corpus: {len(corpus)} non-serializable histories)",
        render_table(["Interpretation", "Admitted non-serializable histories"], [
            ["strict (A1, A2, A3)", admitted_strict],
            ["broad (P1, P2, P3)", admitted_broad],
        ]),
    )
    # The broad reading is strictly more restrictive; neither closes the gap
    # entirely (P0 and write skew remain), which is why Table 3 adds P0.
    assert admitted_strict > admitted_broad
    assert admitted_broad > 0


def test_predicate_locks_vs_item_only_locks(benchmark, print_report):
    """SERIALIZABLE without predicate locks degenerates to REPEATABLE READ for
    the phantom scenarios."""
    item_only = LockingPolicy(
        level=IsolationLevelName.SERIALIZABLE,
        item_read=LockRule(LockMode.SHARED, LockDuration.LONG),
        predicate_read=None,
        write=LockRule(LockMode.EXCLUSIVE, LockDuration.LONG),
        cursor_read=LockRule(LockMode.SHARED, LockDuration.LONG),
    )
    phantom = scenario_by_code("P3")

    def measure():
        with_predicates = evaluate_scenario(
            phantom, engine_factory(IsolationLevelName.SERIALIZABLE))
        without_predicates = evaluate_scenario(
            phantom, engine_factory(IsolationLevelName.SERIALIZABLE, policy=item_only))
        return with_predicates, without_predicates

    with_predicates, without_predicates = benchmark(measure)
    print_report(
        "Phantom (P3) scenario outcome at SERIALIZABLE",
        render_table(["Configuration", "P3"], [
            ["with predicate locks (Table 2)", str(with_predicates)],
            ["item locks only (ablation)", str(without_predicates)],
        ]),
    )
    assert with_predicates is Possibility.NOT_POSSIBLE
    assert without_predicates is Possibility.POSSIBLE


def test_first_committer_wins_vs_first_writer_wins(benchmark, print_report):
    """Lost updates (P4) under SI, SI without FCW, and Oracle Read Consistency."""
    lost_update = scenario_by_code("P4")
    cursor_lost_update = scenario_by_code("P4C")

    def measure():
        return {
            "Snapshot Isolation (first-committer-wins)": (
                evaluate_scenario(lost_update,
                                  engine_factory(IsolationLevelName.SNAPSHOT_ISOLATION)),
                evaluate_scenario(cursor_lost_update,
                                  engine_factory(IsolationLevelName.SNAPSHOT_ISOLATION)),
            ),
            "Snapshot reads, FCW disabled (ablation)": (
                evaluate_scenario(lost_update,
                                  engine_factory(IsolationLevelName.SNAPSHOT_ISOLATION,
                                                 first_committer_wins=False)),
                evaluate_scenario(cursor_lost_update,
                                  engine_factory(IsolationLevelName.SNAPSHOT_ISOLATION,
                                                 first_committer_wins=False)),
            ),
            "Oracle Read Consistency (first-writer-wins)": (
                evaluate_scenario(lost_update,
                                  engine_factory(IsolationLevelName.ORACLE_READ_CONSISTENCY)),
                evaluate_scenario(cursor_lost_update,
                                  engine_factory(IsolationLevelName.ORACLE_READ_CONSISTENCY)),
            ),
        }

    results = benchmark(measure)
    rows = [[name, str(p4), str(p4c)] for name, (p4, p4c) in results.items()]
    print_report(
        "Lost updates: committer-wins vs writer-wins vs no protection",
        render_table(["Engine", "P4 Lost Update", "P4C Cursor Lost Update"], rows),
    )
    p4_si, p4c_si = results["Snapshot Isolation (first-committer-wins)"]
    p4_nofcw, _ = results["Snapshot reads, FCW disabled (ablation)"]
    p4_orc, p4c_orc = results["Oracle Read Consistency (first-writer-wins)"]
    assert p4_si is Possibility.NOT_POSSIBLE and p4c_si is Possibility.NOT_POSSIBLE
    assert p4_nofcw is Possibility.POSSIBLE          # the protection really is FCW
    assert p4_orc is not Possibility.NOT_POSSIBLE    # paper: ORC allows general P4
    assert p4c_orc is Possibility.NOT_POSSIBLE       # paper: ORC disallows P4C


def test_long_vs_short_write_locks(benchmark, print_report):
    """Degree 0's short write locks re-admit dirty writes (and break recovery)."""
    dirty_write = scenario_by_code("P0")

    def measure():
        return (
            evaluate_scenario(dirty_write, engine_factory(IsolationLevelName.DEGREE_0)),
            evaluate_scenario(dirty_write,
                              engine_factory(IsolationLevelName.READ_UNCOMMITTED)),
        )

    degree0, degree1 = benchmark(measure)
    print_report(
        "Dirty writes (P0) under short vs long write locks",
        render_table(["Configuration", "P0"], [
            ["Degree 0 (short write locks)", str(degree0)],
            ["Degree 1 / READ UNCOMMITTED (long write locks)", str(degree1)],
        ]),
    )
    assert degree0 is Possibility.POSSIBLE
    assert degree1 is Possibility.NOT_POSSIBLE
