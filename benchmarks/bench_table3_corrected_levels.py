"""Table 3 — the corrected phenomenon-based levels (P0–P3), and Remark 6.

Two checks:

* Regenerate Table 3 over a history corpus: for every corrected level and
  every phenomenon, a "Possible" cell must be achievable by some admitted
  history and a "Not Possible" cell must never be.
* Remark 6 (the locking levels of Table 2 and the phenomenon-based levels of
  Table 3 are equivalent): for each of the four levels, the behavioural
  anomaly row produced by the locking *engine*, restricted to the P0–P3
  columns, must equal the declarative Table 3 row.
"""

from __future__ import annotations

from repro.analysis.matrix import compute_phenomenon_table, compute_table4_row, default_history_corpus
from repro.analysis.report import matrix_matches, render_possibility_matrix
from repro.core.isolation import CORRECTED_LEVELS, TABLE_3
from repro.testbed import engine_factory

CORPUS = default_history_corpus(seed=13, count=250)

PHENOMENA = ("P0", "P1", "P2", "P3")


def test_table3_corrected_definitions(benchmark, print_report):
    measured = benchmark(
        lambda: compute_phenomenon_table(CORRECTED_LEVELS, PHENOMENA, CORPUS))
    ok, mismatches = matrix_matches(TABLE_3, measured)
    print_report(
        "Table 3 (corrected definitions, measured over the history corpus)",
        render_possibility_matrix(measured, PHENOMENA),
    )
    assert ok, "\n".join(mismatches)


def test_remark6_locking_engines_realize_table3(benchmark, print_report):
    """Running the Table 2 locking engines over the anomaly scenarios and
    keeping only the P0–P3 columns reproduces Table 3 cell for cell."""

    def behavioural_table3():
        table = {}
        for level in TABLE_3:
            row = compute_table4_row(engine_factory(level))
            table[level] = {code: row[code] for code in PHENOMENA}
        return table

    measured = benchmark(behavioural_table3)
    ok, mismatches = matrix_matches(TABLE_3, measured)
    print_report(
        "Remark 6: Table 3 as realized by the locking engines",
        render_possibility_matrix(measured, PHENOMENA),
    )
    assert ok, "\n".join(mismatches)
