"""The paper's numbered ordering remarks (1, 7, 8, 9, 10), verified empirically.

Each remark asserts a relation between two isolation levels.  The bench
recomputes every relation from the engines' variant-manifestation profiles
(and, for ANOMALY SERIALIZABLE, from the Table 1 strict definition applied to
the realized permissive histories) and checks that every remark holds.
"""

from __future__ import annotations

from repro.analysis.hierarchy_check import verify_remarks
from repro.analysis.report import render_table


def test_all_remarks(benchmark, print_report):
    checks = benchmark(verify_remarks)
    rows = [
        [f"Remark {check.remark}", check.first.value, check.expected.value,
         check.second.value, check.observed.value, "ok" if check.holds else "FAIL"]
        for check in checks
    ]
    print_report(
        "Remarks 1, 7, 8, 9, 10: expected vs observed relations",
        render_table(["Remark", "First level", "Expected", "Second level",
                      "Observed", "Verdict"], rows),
    )
    assert all(check.holds for check in checks), rows
