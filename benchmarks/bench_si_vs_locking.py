"""Section 4.2/4.3 performance discussion: Snapshot Isolation vs locking.

The paper's qualitative claims, reproduced as measurements over randomized
contention workloads (the absolute numbers are ours; the *shape* is the
paper's):

* Snapshot Isolation never blocks readers and readers never block writers,
  while Locking SERIALIZABLE blocks under read/write contention.
* First-Committer-Wins turns write/write contention into commit-time aborts,
  and the abort rate grows with contention (the paper's caveat about
  long-running update transactions).
* Read-only transactions always commit under SI.
"""

from __future__ import annotations


from repro.analysis.report import render_table
from repro.core.isolation import IsolationLevelName
from repro.engine.scheduler import ScheduleRunner
from repro.testbed import make_engine
from repro.workloads.generators import contention_workload

SEEDS = tuple(range(5))


def _run_workloads(level: IsolationLevelName, hot_items: int,
                   read_only_fraction: float, transactions: int = 8):
    """Aggregate blocking / abort / commit counts over several seeded workloads."""
    totals = {"blocked": 0, "deadlocks": 0, "aborted": 0, "committed": 0,
              "reader_aborts": 0}
    for seed in SEEDS:
        database, programs, interleaving = contention_workload(
            seed=seed, transactions=transactions, items=10, hot_items=hot_items,
            read_only_fraction=read_only_fraction)
        engine = make_engine(database, level)
        outcome = ScheduleRunner(engine, programs, interleaving).run()
        assert not outcome.stalled
        totals["blocked"] += outcome.blocked_events
        totals["deadlocks"] += len(outcome.deadlocks)
        readers = {p.txn for p in programs if p.label.startswith("reader")}
        for txn in outcome.statuses:
            if outcome.committed(txn):
                totals["committed"] += 1
            elif outcome.aborted(txn):
                totals["aborted"] += 1
                if txn in readers:
                    totals["reader_aborts"] += 1
    return totals


def test_readers_never_block_under_snapshot_isolation(benchmark, print_report):
    """Read-heavy workload under moderate write contention."""

    def measure():
        return {
            "Snapshot Isolation": _run_workloads(
                IsolationLevelName.SNAPSHOT_ISOLATION, hot_items=2, read_only_fraction=0.6),
            "Locking SERIALIZABLE": _run_workloads(
                IsolationLevelName.SERIALIZABLE, hot_items=2, read_only_fraction=0.6),
            "Locking READ COMMITTED": _run_workloads(
                IsolationLevelName.READ_COMMITTED, hot_items=2, read_only_fraction=0.6),
        }

    results = benchmark(measure)
    rows = [
        [name, stats["blocked"], stats["deadlocks"], stats["aborted"], stats["committed"]]
        for name, stats in results.items()
    ]
    print_report(
        "Read-heavy contention workload (60% readers, 2 hot items, 5 seeds x 8 txns)",
        render_table(["Engine", "Blocked ops", "Deadlocks", "Aborts", "Commits"], rows),
    )
    # The paper's shape: SI never blocks; the locking scheduler does.
    assert results["Snapshot Isolation"]["blocked"] == 0
    assert results["Locking SERIALIZABLE"]["blocked"] > 0
    # Readers never abort under SI.
    assert results["Snapshot Isolation"]["reader_aborts"] == 0


def test_first_committer_wins_abort_rate_grows_with_contention(benchmark, print_report):
    """Write-heavy workloads at decreasing hot-set sizes (increasing contention)."""

    def measure():
        rates = {}
        for hot_items in (8, 4, 2, 1):
            stats = _run_workloads(IsolationLevelName.SNAPSHOT_ISOLATION,
                                   hot_items=hot_items, read_only_fraction=0.0)
            total = stats["aborted"] + stats["committed"]
            rates[hot_items] = stats["aborted"] / total if total else 0.0
        return rates

    rates = benchmark(measure)
    rows = [[hot, f"{rate:.2%}"] for hot, rate in rates.items()]
    print_report(
        "Snapshot Isolation abort rate (first-committer-wins) vs contention",
        render_table(["Hot items (smaller = more contention)", "Abort rate"], rows),
    )
    # Shape check: maximum contention aborts at least as often as minimum.
    assert rates[1] >= rates[8]
    assert rates[1] > 0.0


def test_locking_throughput_shape_under_write_contention(benchmark, print_report):
    """Under pure write contention the locking scheduler serializes via blocking
    (and the occasional deadlock), while SI proceeds and resolves at commit."""

    def measure():
        return {
            "Snapshot Isolation": _run_workloads(
                IsolationLevelName.SNAPSHOT_ISOLATION, hot_items=2, read_only_fraction=0.0),
            "Locking SERIALIZABLE": _run_workloads(
                IsolationLevelName.SERIALIZABLE, hot_items=2, read_only_fraction=0.0),
        }

    results = benchmark(measure)
    rows = [
        [name, stats["blocked"], stats["deadlocks"], stats["aborted"], stats["committed"]]
        for name, stats in results.items()
    ]
    print_report(
        "Write-only contention workload (2 hot items)",
        render_table(["Engine", "Blocked ops", "Deadlocks", "Aborts", "Commits"], rows),
    )
    assert results["Snapshot Isolation"]["blocked"] == 0
    assert results["Locking SERIALIZABLE"]["blocked"] > 0
    # Both sides still commit useful work.
    assert results["Snapshot Isolation"]["committed"] > 0
    assert results["Locking SERIALIZABLE"]["committed"] > 0
