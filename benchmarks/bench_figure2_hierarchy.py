"""Figure 2 — the isolation hierarchy lattice.

Recomputes the partial order of isolation levels from engine behaviour (the
variant-manifestation profiles) and checks it against the paper's Figure 2:
every drawn edge must come out "strictly weaker below", and REPEATABLE READ
vs Snapshot Isolation must come out incomparable, differentiated by exactly
the phenomena the figure names (P3/A3 on one side, A5B on the other).
"""

from __future__ import annotations

from repro.analysis.hierarchy_check import (
    level_profiles,
    profile_relation,
    verify_figure2_edges,
)
from repro.analysis.report import render_table
from repro.core.hierarchy import FIGURE_2_EDGES, Relation
from repro.core.isolation import IsolationLevelName

LEVELS = sorted(
    {edge.lower for edge in FIGURE_2_EDGES} | {edge.higher for edge in FIGURE_2_EDGES},
    key=lambda level: level.value,
)


def test_figure2_edges(benchmark, print_report):
    profiles = benchmark(lambda: level_profiles(LEVELS))
    checks = verify_figure2_edges(profiles)
    rows = [
        [check.edge.lower.value, check.edge.higher.value,
         ", ".join(check.edge.differentiators), check.observed.value,
         "ok" if check.holds else "FAIL"]
        for check in checks
    ]
    print_report(
        "Figure 2 edges (lower « higher), annotated with differentiating phenomena",
        render_table(["Lower level", "Higher level", "Paper's annotation",
                      "Observed relation", "Verdict"], rows),
    )
    assert all(check.holds for check in checks), rows


def test_figure2_repeatable_read_vs_snapshot_isolation(benchmark, print_report):
    profiles = benchmark(lambda: level_profiles(
        [IsolationLevelName.REPEATABLE_READ, IsolationLevelName.SNAPSHOT_ISOLATION]))
    rr = profiles[IsolationLevelName.REPEATABLE_READ]
    si = profiles[IsolationLevelName.SNAPSHOT_ISOLATION]
    relation = profile_relation(rr, si)
    rows = [
        ["only REPEATABLE READ admits", ", ".join(sorted(f"{c}/{v}" for c, v in rr - si))],
        ["only Snapshot Isolation admits", ", ".join(sorted(f"{c}/{v}" for c, v in si - rr))],
        ["relation", relation.value],
    ]
    print_report("Remark 9 (the 'incomparable' corner of Figure 2)",
                 render_table(["", "value"], rows))
    assert relation is Relation.INCOMPARABLE
    assert any(code == "P3" for code, _ in rr - si)
    assert any(code == "A5B" for code, _ in si - rr)
