"""Chaos the distributed campaign runner and byte-diff every leg vs serial.

The ``chaos-campaign`` CI job runs this script.  It is the tentpole
contract of ``repro.distrib`` staged as a matrix: for each of several
seeds, ``FaultPlan.random(seed)`` derives a deterministic schedule of
worker SIGKILLs, heartbeat hangs, slow commits, and transient SQLite lock
errors; the campaign runs under that schedule on **both** store backends
with real supervised worker processes; and the coverage report plus
fingerprint rebuilt from the store must be **byte-identical** to a
fault-free serial run.  A fault-free control leg rides along so a failure
can be attributed to the faults rather than the distribution.

Any leg that fails, poisons a chunk, or diverges by a byte fails the job.
The SQLite stores and a JSON log of every leg are left behind in ``--dir``
so CI can upload them as an artifact (the stores are plain SQLite — any
client can autopsy a failure).

Usage: python benchmarks/check_chaos_campaign.py [--dir OUTDIR]
                                                 [--seeds N] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

CAMPAIGN_KWARGS = dict(max_schedules=200, seed=0, chunk_size=8, workers=2,
                       lease_duration=0.4, heartbeat_interval=0.1,
                       max_attempts=6, deadline_s=120.0)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="chaos-campaign-artifacts",
                        help="directory for store files and the leg log")
    parser.add_argument("--seeds", type=int, default=3,
                        help="random fault schedules to run (>= 3 in CI)")
    parser.add_argument("--workers", type=int, default=None,
                        help="override the worker count")
    args = parser.parse_args(argv)
    outdir = Path(args.dir)
    outdir.mkdir(parents=True, exist_ok=True)
    kwargs = dict(CAMPAIGN_KWARGS)
    if args.workers is not None:
        kwargs["workers"] = args.workers

    from repro.distrib.faults import FaultPlan, run_fault_matrix
    from repro.persist import InMemoryStore, SqliteStore
    from repro.workloads.program_sets import ProgramSetSpec

    spec = ProgramSetSpec.make("increments")
    plans = [FaultPlan()] + [FaultPlan.random(seed, workers=kwargs["workers"])
                             for seed in range(args.seeds)]
    for index, plan in enumerate(plans):
        label = "control" if index == 0 else f"seed {index - 1}"
        print(f"plan {index} ({label}): "
              f"{list(plan.encode()) or 'no faults'}")

    legs = run_fault_matrix(
        spec, None, plans,
        [("memory", lambda index: InMemoryStore()),
         ("sqlite", lambda index: SqliteStore(outdir / f"leg{index}.sqlite"))],
        **kwargs)

    failures = []
    for leg in legs:
        verdict = "ok" if (leg["success"] and leg["byte_equal"]
                           and not leg["poisoned"]) else "FAIL"
        recovery = leg["recovery_latency_s"]
        print(f"plan {leg['plan_index']} on {leg['backend']:7s}: {verdict}  "
              f"(respawns={leg['respawns']}, fenced={leg['fenced_results']}, "
              f"recovery={'%.0f ms' % (recovery * 1000) if recovery else '-'})")
        if verdict == "FAIL":
            failures.append(
                f"plan {leg['plan_index']} ({leg['plan']}) on "
                f"{leg['backend']}: success={leg['success']} "
                f"byte_equal={leg['byte_equal']} poisoned={leg['poisoned']}")

    log_path = outdir / "legs.json"
    log_path.write_text(json.dumps(legs, indent=2, sort_keys=True))
    print(f"leg log written to {log_path}")

    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(f"PASS — {len(legs)} legs byte-identical to serial "
          f"({len(plans)} fault plans x 2 backends)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
