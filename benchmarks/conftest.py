"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints it in
the paper's layout (so the run log doubles as the EXPERIMENTS.md evidence),
and asserts that the *shape* of the result matches the paper before reporting
timing through pytest-benchmark.
"""

from __future__ import annotations

import pytest


def report(title: str, body: str) -> None:
    """Print a titled block that survives pytest's output capture (-s not needed
    thanks to the terminal reporter hook below)."""
    print(f"\n==== {title} ====\n{body}\n")


@pytest.fixture
def print_report(capsys):
    """A reporter that prints through pytest's capture, then re-emits on teardown."""
    blocks = []

    def _report(title: str, body: str) -> None:
        blocks.append(f"\n==== {title} ====\n{body}\n")

    yield _report
    with capsys.disabled():
        for block in blocks:
            print(block)
