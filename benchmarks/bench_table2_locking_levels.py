"""Table 2 — Degrees of consistency and locking isolation levels.

Two checks:

* The lock scope / mode / duration table itself (what each level's policy
  requires), rendered exactly in Table 2's layout.
* The behavioural consequence the paper derives from it (Remark 2): each
  locking engine, run over every anomaly scenario, forbids at least what the
  same-named phenomenon-based ANSI level forbids — locking levels are at least
  as strong as their ANSI counterparts.
"""

from __future__ import annotations

from repro.analysis.matrix import compute_table4_row
from repro.analysis.report import render_table
from repro.core.isolation import IsolationLevelName, Possibility
from repro.locking.policy import POLICIES
from repro.testbed import engine_factory

LOCKING_ORDER = (
    IsolationLevelName.DEGREE_0,
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.CURSOR_STABILITY,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SERIALIZABLE,
)

#: The phenomena each ANSI (Table 1/Table 3) level forbids, used for Remark 2.
ANSI_FORBIDS = {
    IsolationLevelName.READ_UNCOMMITTED: ("P0",),
    IsolationLevelName.READ_COMMITTED: ("P0", "P1"),
    IsolationLevelName.REPEATABLE_READ: ("P0", "P1", "P2"),
    IsolationLevelName.SERIALIZABLE: ("P0", "P1", "P2", "P3"),
}


def test_table2_lock_rules(benchmark, print_report):
    """Render Table 2 from the policies and check its structural properties."""

    def build_rows():
        rows = []
        for level in LOCKING_ORDER:
            policy = POLICIES[level]
            description = policy.describe()
            rows.append([
                level.value,
                description["item read"],
                description["predicate read"],
                description["cursor read"],
                description["write"],
            ])
        return rows

    rows = benchmark(build_rows)
    print_report(
        "Table 2: lock requirements per locking isolation level",
        render_table(
            ["Level", "Item read locks", "Predicate read locks", "Cursor read locks",
             "Write locks"],
            rows),
    )
    # Structural facts from Table 2.
    by_level = {row[0]: row for row in rows}
    assert by_level["Degree 0"][4] == "X short"
    for level in LOCKING_ORDER[1:]:
        assert by_level[level.value][4] == "X long"
    assert by_level["SERIALIZABLE"][2] == "S long"
    assert by_level["REPEATABLE READ"][2] == "S short"
    assert by_level["Cursor Stability"][3] == "S cursor"


def test_remark2_locking_levels_are_at_least_as_strong(benchmark, print_report):
    """Remark 2: each locking level forbids (behaviourally) everything its
    phenomenon-based counterpart forbids."""

    def measure():
        return {
            level: compute_table4_row(engine_factory(level))
            for level in ANSI_FORBIDS
        }

    rows = benchmark(measure)
    table = [
        [level.value, ", ".join(ANSI_FORBIDS[level]),
         ", ".join(code for code, cell in rows[level].items()
                   if cell is Possibility.NOT_POSSIBLE)]
        for level in ANSI_FORBIDS
    ]
    print_report(
        "Remark 2: phenomena forbidden by ANSI definition vs locking engine",
        render_table(["Level", "ANSI forbids", "Locking engine prevents"], table),
    )
    for level, forbidden in ANSI_FORBIDS.items():
        for code in forbidden:
            assert rows[level][code] is Possibility.NOT_POSSIBLE, (level, code)
