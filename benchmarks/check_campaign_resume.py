"""SIGKILL a live campaign, resume it, and diff the coverage byte-for-byte.

The ``campaign-resume`` CI job runs this script.  It stages the tentpole
contract of the persistent campaign store end to end, with a real process
and a real signal rather than an in-process store proxy:

1. **Control** — run a campaign to completion through the CLI into one
   SQLite store.
2. **Victim** — start the identical campaign against a second store as a
   subprocess, throttled so chunk commits are slow enough to aim at, poll
   the store's ``cursors`` table from outside until some chunks are
   durable, and deliver SIGKILL while the campaign is mid-stream.
3. **Resume** — re-run the campaign through ``resume``; it must load the
   durable prefix and execute strictly fewer schedules than the control.
4. **Diff** — rebuild both coverage reports from stored rows only; the
   renders must be byte-identical.

The store files are left behind in ``--dir`` so CI can upload them as an
artifact (they are plain SQLite — any client can autopsy a failure).

Usage: python benchmarks/check_campaign_resume.py [--dir OUTDIR]
"""

from __future__ import annotations

import argparse
import os
import re
import sqlite3
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

CAMPAIGN = "ci"
#: One campaign config, shared by control and victim: identical configs are
#: what makes the byte-for-byte diff meaningful.
RUN_ARGS = ["--program-set", "increments", "--max-schedules", "200",
            "--chunk-size", "8", "--seed", "0", "--campaign", CAMPAIGN]
#: ms of sleep per chunk commit in the victim; widens the kill window (the
#: increments space is 20 schedules per level, so the campaign commits 15
#: chunks — a sub-second window at the first throttle).  Doubled on each
#: retry for machines where the poll loop is too slow to land inside it.
THROTTLE_MS = 40
KILL_ATTEMPTS = 4
EXECUTED_LINE = re.compile(r"campaign (\S+): (\d+) schedules executed this run")


def _cli(*args: str, timeout: float = 300.0) -> Tuple[int, str]:
    command = [sys.executable, "-m", "repro.persist.cli", *args]
    proc = subprocess.run(command, capture_output=True, text=True,
                          timeout=timeout)
    output = proc.stdout + proc.stderr
    return proc.returncode, output


def _executed(output: str) -> int:
    match = EXECUTED_LINE.search(output)
    if match is None:
        raise SystemExit(f"CLI output has no executed-schedules line:\n{output}")
    return int(match.group(2))


def _durable_chunks(store: Path) -> Tuple[int, int]:
    """(committed chunks, completed scopes) read from outside the process."""
    if not store.exists():
        return 0, 0
    try:
        conn = sqlite3.connect(f"file:{store}?mode=ro", uri=True, timeout=1.0)
        try:
            row = conn.execute(
                "SELECT COALESCE(SUM(cursor), 0), "
                "       COALESCE(SUM(complete), 0) FROM cursors").fetchone()
            return int(row[0]), int(row[1])
        finally:
            conn.close()
    except sqlite3.OperationalError:
        return 0, 0  # schema not created yet, or WAL mid-checkpoint


def _kill_mid_stream(store: Path, total_scopes: int) -> bool:
    """Start the victim, SIGKILL it once chunks are durable; True if partial."""
    throttle = THROTTLE_MS
    for attempt in range(KILL_ATTEMPTS):
        if store.exists():
            for suffix in ("", "-wal", "-shm"):
                path = Path(str(store) + suffix)
                if path.exists():
                    path.unlink()
        command = [sys.executable, "-m", "repro.persist.cli", "run",
                   "--store", str(store), *RUN_ARGS,
                   "--throttle-ms", str(throttle)]
        victim = subprocess.Popen(command, stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline and victim.poll() is None:
                chunks, _ = _durable_chunks(store)
                if chunks >= 3:
                    break
                time.sleep(0.05)
            victim.kill()  # SIGKILL — no atexit, no finally blocks
            victim.wait(timeout=30.0)
        finally:
            if victim.poll() is None:
                victim.kill()
        chunks, completed = _durable_chunks(store)
        if chunks > 0 and completed < total_scopes:
            print(f"victim killed mid-stream on attempt {attempt + 1}: "
                  f"{chunks} chunks durable, {completed}/{total_scopes} "
                  f"scopes complete (throttle {throttle}ms)")
            return True
        print(f"attempt {attempt + 1} missed the window ({chunks} chunks, "
              f"{completed} scopes complete) — retrying at {throttle * 2}ms")
        throttle *= 2
    return False


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="campaign-resume-artifacts",
                        help="directory for the store files (kept for upload)")
    args = parser.parse_args(argv)
    outdir = Path(args.dir)
    outdir.mkdir(parents=True, exist_ok=True)
    control_store = outdir / "control.sqlite"
    victim_store = outdir / "victim.sqlite"
    for store in (control_store, victim_store):
        if store.exists():
            store.unlink()

    code, output = _cli("run", "--store", str(control_store), *RUN_ARGS)
    if code != 0:
        print(output)
        print("control campaign failed")
        return 1
    control_executed = _executed(output)
    _, control_scopes = _durable_chunks(control_store)
    print(f"control campaign complete: {control_executed} schedules executed, "
          f"{control_scopes} scopes")

    if not _kill_mid_stream(victim_store, control_scopes):
        print("could not land a SIGKILL mid-campaign — the commit throttle "
              "never made the window wide enough on this machine")
        return 1

    code, output = _cli("resume", "--store", str(victim_store),
                        "--campaign", CAMPAIGN)
    if code != 0:
        print(output)
        print("resume failed")
        return 1
    resumed_executed = _executed(output)
    print(f"resume executed {resumed_executed} schedules "
          f"(control executed {control_executed})")

    failures = []
    if not resumed_executed < control_executed:
        failures.append(
            f"resume executed {resumed_executed} schedules — not fewer than "
            f"the control's {control_executed}; the durable prefix was not "
            f"reused")

    # The decisive diff: both coverage reports rebuilt from stored rows only.
    from repro.analysis.coverage import coverage_report_from_store
    from repro.persist import SqliteStore

    renders = {}
    for name, path in (("control", control_store), ("victim", victim_store)):
        store = SqliteStore(path)
        try:
            renders[name] = coverage_report_from_store(store, CAMPAIGN).render()
        finally:
            store.close()
    if renders["control"] != renders["victim"]:
        failures.append("resumed coverage report differs from the control")
        print("--- control ---")
        print(renders["control"])
        print("--- victim (resumed) ---")
        print(renders["victim"])
    else:
        print("coverage reports are byte-identical:")
        print(renders["victim"])

    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(f"PASS — store files kept under {outdir}{os.sep} for the artifact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
