"""Table 1 — ANSI SQL isolation levels defined by the three original phenomena.

Regenerates the Possible / Not Possible matrix for the ANSI levels (READ
UNCOMMITTED, READ COMMITTED, REPEATABLE READ, ANOMALY SERIALIZABLE) against
P1, P2, P3 by searching a corpus of histories (the paper's catalogue plus
seeded random histories) for admitted histories exhibiting each phenomenon.

It also reproduces the paper's Section 3 argument in matrix form: under the
*strict* interpretation (A1/A2/A3), the counterexample histories H1, H2, H3
are all admitted by ANOMALY SERIALIZABLE even though none is serializable.
"""

from __future__ import annotations

from repro.analysis.matrix import compute_phenomenon_table, default_history_corpus
from repro.analysis.report import matrix_matches, render_possibility_matrix
from repro.core.catalog import by_name
from repro.core.isolation import (
    ANSI_BROAD_LEVELS,
    ANSI_STRICT_LEVELS,
    IsolationLevelName,
    TABLE_1,
    TRUE_SERIALIZABLE,
)

CORPUS = default_history_corpus(seed=7, count=250)


def _compute_broad_table1():
    return compute_phenomenon_table(ANSI_BROAD_LEVELS, ("P1", "P2", "P3"), CORPUS)


def test_table1_broad_interpretation(benchmark, print_report):
    measured = benchmark(_compute_broad_table1)
    ok, mismatches = matrix_matches(TABLE_1, measured)
    print_report(
        "Table 1 (broad interpretation, measured over the history corpus)",
        render_possibility_matrix(measured, ("P1", "P2", "P3")),
    )
    assert ok, "\n".join(mismatches)


def test_table1_strict_interpretation_admits_the_counterexamples(benchmark, print_report):
    """The weakness the paper demonstrates: forbidding only A1/A2/A3 admits
    the non-serializable histories H1, H2, and H3."""
    anomaly_serializable = ANSI_STRICT_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]

    def admitted_counterexamples():
        result = {}
        for name in ("H1", "H2", "H3"):
            history = by_name(name).history
            result[name] = (
                anomaly_serializable.permits(history),
                TRUE_SERIALIZABLE.permits(history),
            )
        return result

    verdicts = benchmark(admitted_counterexamples)
    rows = [
        [name, "admitted" if admitted else "rejected",
         "serializable" if serializable else "NOT serializable"]
        for name, (admitted, serializable) in verdicts.items()
    ]
    from repro.analysis.report import render_table
    print_report(
        "Strict ANOMALY SERIALIZABLE vs the paper's counterexamples",
        render_table(["history", "strict A1-A3 verdict", "actual"], rows),
    )
    for name, (admitted, serializable) in verdicts.items():
        assert admitted, f"{name} should slip past the strict definition"
        assert not serializable, f"{name} is non-serializable in the paper"
