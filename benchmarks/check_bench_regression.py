"""Diff a fresh BENCH_explorer.json against the committed baseline.

Used by the ``bench-smoke`` CI job: after re-running the benchmark at the
baseline's schedule budget, the fresh serial throughput must not fall more
than ``BENCH_SMOKE_TOLERANCE`` (default 30%) below the committed number.

Usage: python benchmarks/check_bench_regression.py BASELINE.json FRESH.json

The comparison is only meaningful when both files were produced with the same
``schedules`` budget; a mismatch is reported and fails the check (it means
the job is diffing apples against oranges, not that performance regressed).
Hardware variance between the committing machine and the CI runner is the
known caveat of an absolute-throughput gate; widen the tolerance via the
environment variable if a runner class change makes this flap.
"""

from __future__ import annotations

import json
import os
import sys


def main(baseline_path: str, fresh_path: str) -> int:
    tolerance = float(os.environ.get("BENCH_SMOKE_TOLERANCE", "0.30"))
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    if baseline.get("schedules") != fresh.get("schedules"):
        print(f"schedule budgets differ: baseline ran {baseline.get('schedules')}, "
              f"fresh ran {fresh.get('schedules')} — not comparable")
        return 1

    if baseline.get("cores") != fresh.get("cores"):
        print(f"note: baseline machine had {baseline.get('cores')} usable cores, "
              f"this machine has {fresh.get('cores')} — absolute throughput "
              f"comparisons carry hardware variance; widen BENCH_SMOKE_TOLERANCE "
              f"if this check flaps across runner classes")

    try:
        baseline_rate = baseline["serial"]["schedules_per_sec"]
        fresh_rate = fresh["serial"]["schedules_per_sec"]
    except KeyError as missing:
        print(f"missing serial section/key: {missing}")
        return 1

    floor = baseline_rate * (1.0 - tolerance)
    verdict = "OK" if fresh_rate >= floor else "REGRESSION"
    print(f"serial schedules/sec: baseline {baseline_rate:,.0f}, "
          f"fresh {fresh_rate:,.0f}, floor {floor:,.0f} "
          f"(tolerance {tolerance:.0%}) -> {verdict}")
    return 0 if fresh_rate >= floor else 1


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1], sys.argv[2]))
