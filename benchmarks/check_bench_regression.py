"""Diff a fresh BENCH_explorer.json against the committed baseline.

Used by the ``bench-smoke`` CI job: after re-running the benchmark at the
baseline's schedule budget, the fresh serial throughput must not fall more
than ``BENCH_SMOKE_TOLERANCE`` (default 30%) below the committed number.

Usage: python benchmarks/check_bench_regression.py BASELINE.json FRESH.json

Every throughput section present in *both* files is compared and its measured
ratio reported (fresh / baseline), so a regression report shows the whole
picture, not just the failing number — but only the serial headline and the
batch-kernel aggregate are *gated*; the others are informational (they carry
more machine variance).  The fresh ``batch_kernel`` section is additionally
checked for correctness flags: every level must report ``byte_equal: true``
and fast-path ``occupancy`` of 1.0 (the benchmark workload is item-only, so
any ejection means the kernel stopped covering it).  The fresh
``persistence`` section is likewise gated on its own machine-independent
flag: ``serial_overhead_ratio`` (store-attached vs. store-free serial
throughput, measured in the same run) must stay at or above
``BENCH_PERSIST_MIN_RATIO`` (default 0.85 — the within-15% bar).
A section missing from either file is reported by name with which file lacks
it: that means the two files came from different benchmark versions or from
partial runs (e.g. ``-k`` selections), not that performance regressed.

The comparison is only meaningful when both files were produced with the same
``schedules`` budget; a mismatch fails the check (it would be diffing apples
against oranges).  Hardware variance between the committing machine and the
CI runner is the known caveat of an absolute-throughput gate; widen the
tolerance via the environment variable if a runner class change makes this
flap.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

#: (section path, human label, gated) — every known schedules-per-second
#: metric.  ``gated`` marks the metrics whose regression fails the check.
SECTIONS: Tuple[Tuple[Tuple[str, ...], str, bool], ...] = (
    (("serial", "schedules_per_sec"), "serial schedules/sec", True),
    (("batch_kernel", "aggregate", "schedules_per_sec"),
     "batch kernel aggregate schedules/sec", True),
    (("parallel", "schedules_per_sec"), "parallel schedules/sec", False),
    (("trie_executor", "trie_schedules_per_sec"), "trie executor schedules/sec", False),
    (("table4_explored", "schedules_per_sec"), "explored Table 4 schedules/sec", False),
    (("streaming", "schedules_per_sec"), "streaming generation schedules/sec", False),
    (("outcome_memo", "speedup"), "outcome-memo speedup", False),
    (("static_pruning", "speedup"), "static-pruning speedup", False),
    (("persistence", "store_schedules_per_sec"),
     "sqlite-store schedules/sec", False),
    (("distrib", "schedules_per_sec"),
     "distributed campaign schedules/sec", False),
    (("service", "anomalies_per_sec"),
     "online certifier anomalies/sec", False),
)

#: The ISSUE 8 bar for the fresh ``persistence`` section: a SqliteStore may
#: cost at most 15% of serial throughput versus the store-free run.
PERSIST_MIN_RATIO = float(os.environ.get("BENCH_PERSIST_MIN_RATIO", "0.85"))


def _lookup(data: Dict[str, Any], path: Tuple[str, ...]) -> Optional[float]:
    node: Any = data
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _load(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        print(f"benchmark file not found: {path}")
    except json.JSONDecodeError as error:
        print(f"benchmark file {path} is not valid JSON: {error}")
    return None


def _check_batch_kernel(fresh: Dict[str, Any]) -> List[str]:
    """Correctness flags inside the fresh ``batch_kernel`` section.

    Throughput is handled by the SECTIONS table; this checks the things that
    are wrong at *any* speed — a level whose kernel output diverged from the
    stepwise path (``byte_equal`` false) or whose fast path silently ejected
    rows on a registered workload (``occupancy`` below 1).  An absent section
    is fine here (no numpy on the runner); the gated SECTIONS entry already
    reports that.
    """
    section = fresh.get("batch_kernel")
    if not isinstance(section, dict):
        return []
    failures: List[str] = []
    for level, entry in sorted(section.items()):
        if level == "aggregate" or not isinstance(entry, dict):
            continue
        byte_equal = entry.get("byte_equal")
        occupancy = entry.get("occupancy")
        print(f"batch kernel @ {level}: "
              f"{entry.get('batch_schedules_per_sec', 0):,.1f}/s, "
              f"occupancy {occupancy}, byte_equal {byte_equal}")
        if byte_equal is not True:
            failures.append(f"batch kernel @ {level}: byte_equal is {byte_equal!r}")
        if not isinstance(occupancy, (int, float)) or occupancy < 1.0:
            failures.append(f"batch kernel @ {level}: occupancy {occupancy!r} < 1.0")
    return failures


def _check_persistence(fresh: Dict[str, Any]) -> List[str]:
    """The store-overhead flag inside the fresh ``persistence`` section.

    ``serial_overhead_ratio`` is a same-run, same-machine comparison (store
    attached vs. store-free), so unlike the absolute throughput sections it
    carries no cross-machine variance and gets its own fixed floor: the
    ISSUE 8 bar of staying within 15% of store-free throughput.  An absent
    section means a partial run; the SECTIONS entry reports that.
    """
    section = fresh.get("persistence")
    if not isinstance(section, dict):
        return []
    ratio = section.get("serial_overhead_ratio")
    print(f"sqlite-store overhead: ratio {ratio} "
          f"(floor {PERSIST_MIN_RATIO}), resume wall "
          f"{section.get('resume_wall_s')}s")
    if not isinstance(ratio, (int, float)) or ratio < PERSIST_MIN_RATIO:
        return [f"persistence: store/plain throughput ratio {ratio!r} is "
                f"below {PERSIST_MIN_RATIO} (tune via BENCH_PERSIST_MIN_RATIO)"]
    return []


def _check_distrib(fresh: Dict[str, Any]) -> List[str]:
    """Correctness flags inside the fresh ``distrib`` section.

    Throughput and recovery latency are informational (worker-process
    overhead and lease tuning dominate both, and they vary by machine
    class), but ``byte_equal`` is wrong at any speed: the distributed run
    and the worker-kill run must both reproduce the serial fingerprint.
    """
    section = fresh.get("distrib")
    if not isinstance(section, dict):
        return []
    byte_equal = section.get("byte_equal")
    print(f"distributed campaign: "
          f"{section.get('schedules_per_sec', 0):,.1f}/s at "
          f"{section.get('workers')} workers, kill recovery "
          f"{section.get('recovery_latency_ms')} ms, byte_equal {byte_equal}")
    if byte_equal is not True:
        return [f"distrib: byte_equal is {byte_equal!r}"]
    return []


def _check_service(fresh: Dict[str, Any]) -> List[str]:
    """Correctness flag inside the fresh ``service`` section.

    Anomalies/sec and classify latency are informational (client count and
    machine class dominate them), but ``byte_equal`` is wrong at any speed:
    every online stream verdict must match the offline classifier on the
    same ops — the certifier service's whole correctness contract.
    """
    section = fresh.get("service")
    if not isinstance(section, dict):
        return []
    byte_equal = section.get("byte_equal")
    print(f"online certifier: "
          f"{section.get('anomalies_per_sec', 0):,.1f} anomalies/s at "
          f"{section.get('clients')} clients, p99 classify "
          f"{section.get('p99_classify_us')} us, byte_equal {byte_equal}")
    if byte_equal is not True:
        return [f"service: byte_equal is {byte_equal!r}"]
    return []


def main(baseline_path: str, fresh_path: str) -> int:
    tolerance = float(os.environ.get("BENCH_SMOKE_TOLERANCE", "0.30"))
    baseline = _load(baseline_path)
    fresh = _load(fresh_path)
    if baseline is None or fresh is None:
        return 1

    if baseline.get("schedules") != fresh.get("schedules"):
        print(f"schedule budgets differ: baseline ran {baseline.get('schedules')}, "
              f"fresh ran {fresh.get('schedules')} — not comparable")
        return 1

    for key in ("cores", "python_version", "platform"):
        if baseline.get(key) != fresh.get(key):
            print(f"note: {key} differs (baseline {baseline.get(key)!r}, "
                  f"fresh {fresh.get(key)!r}) — absolute throughput carries "
                  f"hardware/interpreter variance; widen BENCH_SMOKE_TOLERANCE "
                  f"if this check flaps across runner classes")

    failures: List[str] = []
    compared = 0
    for path, label, gated in SECTIONS:
        base_value = _lookup(baseline, path)
        fresh_value = _lookup(fresh, path)
        if base_value is None and fresh_value is None:
            continue  # section absent from this benchmark version entirely
        if base_value is None or fresh_value is None:
            missing_in = baseline_path if base_value is None else fresh_path
            print(f"{label}: section {'/'.join(path)} missing from "
                  f"{missing_in} — different benchmark versions or a partial "
                  f"run; {'FAILING (gated section)' if gated else 'skipping'}")
            if gated:
                failures.append(f"{label}: missing from {missing_in}")
            continue
        compared += 1
        ratio = fresh_value / base_value if base_value else float("inf")
        floor = base_value * (1.0 - tolerance)
        regressed = gated and fresh_value < floor
        verdict = "REGRESSION" if regressed else "OK"
        gate_note = f", floor {floor:,.1f} (tolerance {tolerance:.0%})" if gated else ""
        print(f"{label}: baseline {base_value:,.1f}, fresh {fresh_value:,.1f}, "
              f"ratio {ratio:.2f}x{gate_note} -> {verdict}")
        if regressed:
            failures.append(f"{label}: {fresh_value:,.1f} < floor {floor:,.1f}")

    failures.extend(_check_batch_kernel(fresh))
    failures.extend(_check_persistence(fresh))
    failures.extend(_check_distrib(fresh))
    failures.extend(_check_service(fresh))
    if compared == 0 and not failures:
        print("no comparable sections found in either file — nothing was checked")
        return 1
    if failures:
        print("regressions: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1], sys.argv[2]))
