"""Schedule-space explorer benchmarks: throughput, reduction, streaming, caches.

Not a paper figure — this measures the exploration machinery the reproduction
adds on top of the paper, and establishes the repo's first machine-readable
benchmark baseline: every run writes ``BENCH_explorer.json`` (schedules/sec
serial vs parallel, partial-order reduction ratio, streaming throughput, peak
RSS, cache hit rates, fingerprint checks) so CI can archive the numbers and
regressions are diffable.

Hard checks enforced here:

* the parallel run must be byte-identical to the serial run (same
  determinism fingerprint) on any worker count;
* sleep-set reduction must cut executed schedules by >= 2x on a registered
  program set while reporting *identical* per-level anomaly coverage;
* sampling ``BENCH_EXPLORER_STREAM`` schedules must run under streaming,
  never materializing the schedule list.

Workload sizes honour ``BENCH_EXPLORER_SCHEDULES`` (default 2000) and
``BENCH_EXPLORER_STREAM`` (default 1,000,000) so CI smoke runs stay small.
The >= 2x parallel speedup assertion only applies with >= 4 usable cores.
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

import pytest

from repro.analysis.coverage import coverage_mismatches
from repro.analysis.matrix import EXPECTED_TABLE_4, compute_table4_explored
from repro.analysis.report import matrix_matches, render_table
from repro.core.isolation import IsolationLevelName, Possibility
from repro.explorer import ProgramSetSpec, available_workers, explore, schedule_space
from repro.workloads.program_sets import build_program_set

SPEC = ProgramSetSpec.make("contention", transactions=4, items=4, hot_items=2,
                           operations_per_transaction=2)
#: Streaming generation target: a space of ~1.4e11 interleavings, so even a
#: million-schedule sample is a vanishing fraction (pure i.i.d., no tracking).
STREAM_SPEC = ProgramSetSpec.make("contention", transactions=6, items=8,
                                  hot_items=2, operations_per_transaction=2)
LEVELS = (IsolationLevelName.READ_COMMITTED, IsolationLevelName.SNAPSHOT_ISOLATION)
SCHEDULES = int(os.environ.get("BENCH_EXPLORER_SCHEDULES", "2000"))
STREAM_SCHEDULES = int(os.environ.get("BENCH_EXPLORER_STREAM", "1000000"))
#: Per-variant schedule budget for the explored-Table-4 smoke.  The default
#: still covers every curated variant space exhaustively (the largest has
#: 924 interleavings), so the matrix must match the paper cell for cell.
TABLE4_BUDGET = int(os.environ.get("BENCH_TABLE4_BUDGET", "1024"))
SEED = 42

#: Anchored to the repo root regardless of pytest's invocation cwd, so the CI
#: artifact upload (and local readers) always find the same file.
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_explorer.json"

#: Sections accumulated by the tests and flushed to BENCH_explorer.json.
_BASELINE = {
    "benchmark": "explorer",
    "schedules": SCHEDULES,
    "stream_schedules": STREAM_SCHEDULES,
    "seed": SEED,
    "workload": SPEC.describe(),
    "levels": [level.value for level in LEVELS],
}


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes (Linux semantics)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


@pytest.fixture(scope="session", autouse=True)
def write_baseline():
    """Flush whatever sections the selected tests produced, at session end."""
    yield
    _BASELINE["peak_rss_kb"] = _peak_rss_kb()
    BASELINE_PATH.write_text(json.dumps(_BASELINE, indent=2, sort_keys=True) + "\n")


def _run(workers: int, schedules: int = SCHEDULES):
    started = time.perf_counter()
    result = explore(SPEC, levels=LEVELS, mode="sample", max_schedules=schedules,
                     seed=SEED, workers=workers, chunk_size=64)
    duration = time.perf_counter() - started
    executed = result.total_schedules()
    return result, executed / duration, duration


def test_explorer_throughput_serial(benchmark, print_report):
    result = benchmark.pedantic(
        lambda: explore(SPEC, levels=(IsolationLevelName.READ_COMMITTED,),
                        mode="sample", max_schedules=min(SCHEDULES, 500), seed=SEED),
        rounds=3, iterations=1,
    )
    stats = result.levels[IsolationLevelName.READ_COMMITTED].cache_stats
    classified = stats["hits"] + stats["misses"] + stats.get("shared_hits", 0)
    _BASELINE["cache"] = dict(stats, hit_rate=round(stats["hits"] / classified, 4))
    print_report(
        f"Explorer classification caches ({min(SCHEDULES, 500)} sampled schedules)",
        render_table(["metric", "value"], sorted(stats.items())),
    )
    assert result.total_schedules() == min(SCHEDULES, 500)


def test_explorer_parallel_speedup_and_determinism(print_report):
    cores = available_workers()
    serial_result, serial_rate, serial_time = _run(workers=1)
    workers = min(cores, 8) if cores > 1 else 2
    parallel_result, parallel_rate, parallel_time = _run(workers=workers)

    fingerprint_match = serial_result.fingerprint() == parallel_result.fingerprint()
    speedup = parallel_rate / serial_rate
    _BASELINE["serial"] = {
        "schedules_per_sec": round(serial_rate, 1), "wall_s": round(serial_time, 3),
    }
    _BASELINE["parallel"] = {
        "workers": workers, "schedules_per_sec": round(parallel_rate, 1),
        "wall_s": round(parallel_time, 3), "speedup": round(speedup, 2),
    }
    _BASELINE["fingerprint_match"] = fingerprint_match

    print_report(
        f"Explorer throughput: {SCHEDULES} schedules x {len(LEVELS)} levels "
        f"({cores} usable cores)",
        render_table(
            ["configuration", "schedules/sec", "wall s", "speedup"],
            [
                ["serial (1 worker)", f"{serial_rate:,.0f}", f"{serial_time:.2f}", "1.00x"],
                [f"parallel ({workers} workers)", f"{parallel_rate:,.0f}",
                 f"{parallel_time:.2f}", f"{speedup:.2f}x"],
            ],
        ),
    )
    assert fingerprint_match, "parallel exploration must be byte-identical to serial"
    if cores >= 4 and SCHEDULES >= 2000:
        assert speedup >= 2.0, (
            f"expected >= 2x parallel speedup on {cores} cores, got {speedup:.2f}x"
        )
    else:
        # Smoke-sized runs (BENCH_EXPLORER_SCHEDULES < 2000) pay fixed pool +
        # manager startup against a sub-second workload; only the fingerprint
        # is load-bearing there.
        pytest.skip(f"speedup assertion needs >= 4 cores and >= 2000 schedules, "
                    f"have {cores} cores / {SCHEDULES} (measured {speedup:.2f}x)")


def test_reduction_ratio_and_soundness(print_report):
    """Sleep-set reduction: >= 2x fewer executions, byte-equal coverage."""
    gate_levels = (IsolationLevelName.READ_COMMITTED,
                   IsolationLevelName.SNAPSHOT_ISOLATION,
                   IsolationLevelName.SERIALIZABLE)
    rows = []
    section = {}
    for spec in (
        ProgramSetSpec.make("sharded-increments"),
        ProgramSetSpec.make("contention", transactions=3, items=3, hot_items=1,
                            operations_per_transaction=1),
        ProgramSetSpec.make("bank-transfer"),
    ):
        full = explore(spec, levels=gate_levels, mode="exhaustive",
                       max_schedules=5000)
        started = time.perf_counter()
        reduced = explore(spec, levels=gate_levels, mode="exhaustive",
                          max_schedules=5000, reduction="sleep-set")
        reduced_time = time.perf_counter() - started
        assert coverage_mismatches(full, reduced, levels=gate_levels) == []
        ratio = reduced.reduction_ratio()
        per_level_executed = reduced.executed_schedules() // len(gate_levels)
        rows.append([spec.describe(), str(reduced.space.total),
                     str(per_level_executed), f"{ratio:.2f}x", "yes"])
        section[spec.name] = {
            "space": reduced.space.total,
            "executed_per_level": per_level_executed,
            "ratio": round(ratio, 2),
            "coverage_matches": True,
            "wall_s": round(reduced_time, 3),
        }
    _BASELINE["reduction"] = section
    print_report(
        "Partial-order reduction (exhaustive spaces, coverage gated)",
        render_table(["program set", "space", "executed/level", "reduction",
                      "coverage =="], rows),
    )
    best = max(entry["ratio"] for entry in section.values())
    assert best >= 2.0, f"expected >= 2x reduction somewhere, best was {best:.2f}x"


def test_explored_table4_smoke(print_report):
    """Explorer-driven Table 4: the measured matrix must equal the paper's.

    Every scenario variant's interleaving space runs under every Table 4
    level (sleep-set reduced, level-aware oracle); the aggregated cells must
    match ``EXPECTED_TABLE_4`` cell for cell, with a witness interleaving
    behind every witnessed cell and every stalled/deadlocked schedule
    handled as a first-class non-manifesting result.  The summary lands in
    ``BENCH_explorer.json`` so CI archives the measured frequencies.
    """
    started = time.perf_counter()
    table = compute_table4_explored(max_schedules=TABLE4_BUDGET)
    duration = time.perf_counter() - started
    ok, mismatches = matrix_matches(EXPECTED_TABLE_4, table.possibilities())
    witnessed = [
        cell for row in table.cells.values() for cell in row.values()
        if cell.possibility is not Possibility.NOT_POSSIBLE
    ]
    _BASELINE["table4_explored"] = {
        "budget": TABLE4_BUDGET,
        "reduction": "sleep-set",
        "schedules": table.total_schedules(),
        "stalled": table.total_stalled(),
        "cells": sum(len(row) for row in table.cells.values()),
        "witnessed_cells": len(witnessed),
        "witnesses_recorded": sum(1 for cell in witnessed if cell.witness),
        "mismatches": len(mismatches),
        "wall_s": round(duration, 3),
        "schedules_per_sec": round(table.total_schedules() / duration, 1),
    }
    print_report(
        f"Explored Table 4 ({TABLE4_BUDGET} schedules/variant budget, "
        f"{duration:.1f}s)",
        table.render(),
    )
    assert ok, "\n".join(mismatches)
    assert all(cell.witness is not None for cell in witnessed)


def test_streaming_million_schedule_sampling(print_report):
    """Sampling STREAM_SCHEDULES schedules holds O(chunk) memory, no list."""
    _, programs = build_program_set(STREAM_SPEC)
    space = schedule_space(programs, mode="sample",
                           max_schedules=STREAM_SCHEDULES, seed=SEED)
    rss_before = _peak_rss_kb()
    started = time.perf_counter()
    count = 0
    chunk_sizes = set()
    for _, chunk in space.iter_chunks(4096):
        count += len(chunk)
        chunk_sizes.add(len(chunk))
    duration = time.perf_counter() - started
    rss_after = _peak_rss_kb()

    assert count == STREAM_SCHEDULES
    assert space._materialized is None, "streaming must not materialize the space"
    assert max(chunk_sizes) <= 4096
    rate = count / duration
    _BASELINE["streaming"] = {
        "sampled": count,
        "schedules_per_sec": round(rate, 1),
        "wall_s": round(duration, 3),
        "peak_rss_growth_kb": rss_after - rss_before,
        "materialized": False,
    }
    print_report(
        f"Streaming schedule generation ({count:,} sampled interleavings)",
        render_table(
            ["metric", "value"],
            [["schedules/sec", f"{rate:,.0f}"],
             ["wall s", f"{duration:.2f}"],
             ["peak RSS growth", f"{rss_after - rss_before} kB"],
             ["materialized list", "no"]],
        ),
    )
