"""Schedule-space explorer throughput: serial vs. parallel, with determinism checks.

Not a paper figure — this measures the exploration machinery the reproduction
adds on top of the paper: schedules/sec through execution + classification,
the speedup from fanning chunks out over worker processes, and the
effectiveness of the memoization caches.  The parallel run must be
byte-identical to the serial run (same fingerprint) on any worker count; the
>= 2x speedup assertion only applies on machines with >= 4 usable cores.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.coverage import build_coverage_report
from repro.analysis.report import render_table
from repro.core.isolation import IsolationLevelName
from repro.explorer import ProgramSetSpec, available_workers, explore

SPEC = ProgramSetSpec.make("contention", transactions=4, items=4, hot_items=2,
                           operations_per_transaction=2)
LEVELS = (IsolationLevelName.READ_COMMITTED, IsolationLevelName.SNAPSHOT_ISOLATION)
SCHEDULES = 2_000
SEED = 42


def _run(workers: int, schedules: int = SCHEDULES):
    started = time.perf_counter()
    result = explore(SPEC, levels=LEVELS, mode="sample", max_schedules=schedules,
                     seed=SEED, workers=workers, chunk_size=64)
    duration = time.perf_counter() - started
    executed = result.total_schedules()
    return result, executed / duration, duration


def test_explorer_throughput_serial(benchmark, print_report):
    result = benchmark.pedantic(
        lambda: explore(SPEC, levels=(IsolationLevelName.READ_COMMITTED,),
                        mode="sample", max_schedules=500, seed=SEED),
        rounds=3, iterations=1,
    )
    stats = result.levels[IsolationLevelName.READ_COMMITTED].cache_stats
    print_report(
        "Explorer classification caches (500 sampled schedules)",
        render_table(["metric", "value"], sorted(stats.items())),
    )
    assert result.total_schedules() == 500


def test_explorer_parallel_speedup_and_determinism(print_report):
    cores = available_workers()
    serial_result, serial_rate, serial_time = _run(workers=1)
    workers = min(cores, 8) if cores > 1 else 2
    parallel_result, parallel_rate, parallel_time = _run(workers=workers)

    assert serial_result.fingerprint() == parallel_result.fingerprint(), (
        "parallel exploration must be byte-identical to serial"
    )
    speedup = parallel_rate / serial_rate
    print_report(
        f"Explorer throughput: {SCHEDULES} schedules x {len(LEVELS)} levels "
        f"({cores} usable cores)",
        render_table(
            ["configuration", "schedules/sec", "wall s", "speedup"],
            [
                ["serial (1 worker)", f"{serial_rate:,.0f}", f"{serial_time:.2f}", "1.00x"],
                [f"parallel ({workers} workers)", f"{parallel_rate:,.0f}",
                 f"{parallel_time:.2f}", f"{speedup:.2f}x"],
            ],
        ),
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x parallel speedup on {cores} cores, got {speedup:.2f}x"
        )
    else:
        pytest.skip(f"speedup assertion needs >= 4 cores, have {cores} "
                    f"(measured {speedup:.2f}x)")


def test_explorer_ten_thousand_schedule_coverage(print_report):
    """The acceptance-scale run: 10k sampled interleavings, coverage report."""
    started = time.perf_counter()
    result = explore(SPEC, levels=(IsolationLevelName.READ_COMMITTED,),
                     mode="sample", max_schedules=10_000, seed=SEED,
                     workers=min(available_workers(), 8))
    duration = time.perf_counter() - started
    report = build_coverage_report(
        result, codes=("P0", "P1", "P2", "P3", "P4", "A5A", "A5B"))
    print_report(
        f"Anomaly coverage over 10,000 sampled schedules "
        f"({result.total_schedules() / duration:,.0f} schedules/sec)",
        report.render(),
    )
    assert result.total_schedules() == 10_000
    coverage = report.levels[IsolationLevelName.READ_COMMITTED]
    assert any(item.witnessed for item in coverage.phenomena.values())
