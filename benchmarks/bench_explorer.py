"""Schedule-space explorer benchmarks: throughput, trie executor, reduction, caches.

Not a paper figure — this measures the exploration machinery the reproduction
adds on top of the paper, and maintains the repo's machine-readable benchmark
baseline: every run writes ``BENCH_explorer.json`` (schedules/sec serial vs
parallel with a per-phase breakdown, trie-executor gains over from-scratch
execution, partial-order reduction ratio, streaming throughput, peak RSS,
cache hit rates, fingerprint checks) so CI can archive the numbers and
regressions are diffable — the ``bench-smoke`` CI job fails on a >30% serial
throughput regression against the committed baseline.

Hard checks enforced here:

* the parallel run must be byte-identical to the serial run (same
  determinism fingerprint) on any worker count;
* the trie executor must produce byte-identical records to from-scratch
  execution while re-executing strictly fewer slots;
* sleep-set reduction must cut executed schedules by >= 2x on a registered
  program set while reporting *identical* per-level anomaly coverage;
* sampling ``BENCH_EXPLORER_STREAM`` schedules must run under streaming,
  never materializing the schedule list.

Workload sizes honour ``BENCH_EXPLORER_SCHEDULES`` (default 2000) and
``BENCH_EXPLORER_STREAM`` (default 1,000,000) so CI smoke runs stay small.
The parallel-speedup assertion (>= 1.5x at 2 workers, the trie-executor
rebuild target) needs >= 2 usable cores and the full schedule budget; on a
single-core container the parallel section records overhead honestly and the
assertion is skipped — 2 workers on 1 CPU cannot beat serial.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import platform
import resource
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.coverage import coverage_mismatches
from repro.analysis.matrix import EXPECTED_TABLE_4, compute_table4_explored
from repro.analysis.report import matrix_matches, render_table
from repro.core.isolation import IsolationLevelName, Possibility
from repro.engine.scheduler import ScheduleRunner
from repro.explorer import (
    ExploreOptions,
    ProgramSetSpec,
    TrieExecutor,
    available_workers,
    explore,
    numpy_available,
    schedule_space,
)
from repro.explorer.worker import ChunkTask
from repro.testbed import make_engine
from repro.workloads.program_sets import build_program_set, resolve_program_set

SPEC = ProgramSetSpec.make("contention", transactions=4, items=4, hot_items=2,
                           operations_per_transaction=2)
#: Streaming generation target: a space of ~1.4e11 interleavings, so even a
#: million-schedule sample is a vanishing fraction (pure i.i.d., no tracking).
STREAM_SPEC = ProgramSetSpec.make("contention", transactions=6, items=8,
                                  hot_items=2, operations_per_transaction=2)
LEVELS = (IsolationLevelName.READ_COMMITTED, IsolationLevelName.SNAPSHOT_ISOLATION)
SCHEDULES = int(os.environ.get("BENCH_EXPLORER_SCHEDULES", "2000"))
STREAM_SCHEDULES = int(os.environ.get("BENCH_EXPLORER_STREAM", "1000000"))
#: Per-variant schedule budget for the explored-Table-4 smoke.  The default
#: still covers every curated variant space exhaustively (the largest has
#: 924 interleavings), so the matrix must match the paper cell for cell.
TABLE4_BUDGET = int(os.environ.get("BENCH_TABLE4_BUDGET", "1024"))
SEED = 42
#: The seed repo's serial throughput on the reference container (measured by
#: PR 4's benchmark before any explorer optimisations; see ROADMAP).  The
#: ISSUE 5 acceptance bar is >= 5x this number.
SEED_SERIAL_RATE = 961.0
SERIAL_MIN_RATE = float(os.environ.get("BENCH_SERIAL_MIN_RATE",
                                       str(5 * SEED_SERIAL_RATE)))
#: The ISSUE 7 acceptance bar for the batch-drain kernel: aggregate serial
#: throughput across the five supported levels must reach >= 20x seed.
#: Env-tunable for slower runner classes, like the serial floor above.
BATCH_MIN_RATE = float(os.environ.get("BENCH_BATCH_MIN_RATE",
                                      str(20 * SEED_SERIAL_RATE)))
#: Batch-kernel timing runs per level: the recorded rate is the best of this
#: many drains, the same noise-damping methodology as the serial baseline.
BATCH_RUNS = int(os.environ.get("BENCH_BATCH_RUNS", "5"))
#: Serial-baseline runs: the headline rate is the best of this many runs,
#: damping scheduler noise on small shared VMs (documented methodology; the
#: per-run rates are all recorded).
SERIAL_RUNS = int(os.environ.get("BENCH_SERIAL_RUNS", "5"))
#: The ISSUE 8 acceptance bar: serial throughput with a SqliteStore attached
#: must stay within 15% of the store-free run (ratio >= 0.85), measured at
#: matched batch sizes.  Env-tunable for slow disks like the floors above.
PERSIST_MIN_RATIO = float(os.environ.get("BENCH_PERSIST_MIN_RATIO", "0.85"))
#: Timed (plain, store) run pairs; the recorded rates are the best of each.
#: The store's absolute overhead is ~0.1s-scale and noisy (WAL checkpoints,
#: cpufreq), so the ratio needs more damping than the big headline numbers.
PERSIST_RUNS = int(os.environ.get("BENCH_PERSIST_RUNS", "5"))

#: Anchored to the repo root regardless of pytest's invocation cwd, so the CI
#: artifact upload (and local readers) always find the same file.
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_explorer.json"

#: Sections accumulated by the tests and flushed to BENCH_explorer.json.
_BASELINE = {
    "benchmark": "explorer",
    "schedules": SCHEDULES,
    "stream_schedules": STREAM_SCHEDULES,
    "seed": SEED,
    "workload": SPEC.describe(),
    "levels": [level.value for level in LEVELS],
    # Environment metadata, so committed baselines are auditable: absolute
    # throughput comparisons are only meaningful against the same class of
    # interpreter and machine.
    "cores": available_workers(),
    "python_version": platform.python_version(),
    "platform": platform.platform(),
    "implementation": sys.implementation.name,
}

_PHASE_KEYS = ("us_testbed_build", "us_step_execution", "us_classification",
               "us_canonicalization")


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes (Linux semantics)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


@pytest.fixture(scope="session", autouse=True)
def write_baseline():
    """Flush whatever sections the selected tests produced, at session end."""
    yield
    _BASELINE["peak_rss_kb"] = _peak_rss_kb()
    BASELINE_PATH.write_text(json.dumps(_BASELINE, indent=2, sort_keys=True) + "\n")


def _phase_breakdown(result, wall: float, workers: int) -> dict:
    """Per-phase busy seconds (summed over workers) plus the residual.

    The residual covers everything outside the instrumented phases: chunk
    dispatch, record assembly, and — for parallel runs — IPC and scheduling
    waits.  Phase timers measure wall time inside workers, so on an
    oversubscribed machine (more workers than cores) they include preemption.
    """
    totals = {key: 0 for key in _PHASE_KEYS}
    for exploration in result.levels.values():
        for key in _PHASE_KEYS:
            totals[key] += exploration.cache_stats.get(key, 0)
    busy = sum(totals.values()) / 1e6
    breakdown = {
        "testbed_build_s": round(totals["us_testbed_build"] / 1e6, 4),
        "step_execution_s": round(totals["us_step_execution"] / 1e6, 4),
        "classification_s": round(totals["us_classification"] / 1e6, 4),
        "canonicalization_s": round(totals["us_canonicalization"] / 1e6, 4),
        "wall_s": round(wall, 4),
        "ipc_and_other_s": round(max(0.0, wall - busy / workers), 4),
    }
    return breakdown


def _parallel_overheads(result, workers: int, chunk_size: int = 64):
    """Measured split of the parallel residual: chunk pickling vs pool spin-up.

    ``ipc_and_other_s`` is a residual (wall minus per-worker busy time) and
    used to lump two very different costs.  Both components are re-measured
    here with the same machinery the pool uses: *chunk pickling* serializes
    the actual :class:`ChunkTask` stream (parent -> worker) and the realized
    per-chunk record lists (worker -> parent) through ``pickle``; *pool
    spin-up* times an empty pool of the same worker count through creation,
    one no-op round trip, and teardown.  Whatever remains of the residual is
    genuine scheduling/queue wait, reported as ``ipc_other_s``.
    """
    builder = resolve_program_set(SPEC)
    _, programs = build_program_set(SPEC)
    space = schedule_space(programs, mode="sample", max_schedules=SCHEDULES,
                           seed=SEED)
    started = time.perf_counter()
    for level in result.levels:
        for index, chunk in space.iter_chunks(chunk_size):
            pickle.dumps(ChunkTask(index, SPEC, level, chunk, builder))
        records = result.levels[level].records
        for start in range(0, len(records), chunk_size):
            pickle.dumps(records[start:start + chunk_size])
    pickling = time.perf_counter() - started

    started = time.perf_counter()
    with multiprocessing.Pool(processes=workers) as pool:
        pool.map(ord, "x")
    spinup = time.perf_counter() - started
    return pickling, spinup


def _run(workers: int, schedules: int = SCHEDULES):
    started = time.perf_counter()
    result = explore(SPEC, ExploreOptions(
        levels=LEVELS, mode="sample", max_schedules=schedules,
        seed=SEED, workers=workers, chunk_size=64))
    duration = time.perf_counter() - started
    executed = result.total_schedules()
    return result, executed / duration, duration


#: The serial reference run, shared by the serial-baseline and parallel tests
#: (pytest runs them in definition order; either one primes it).  Best of
#: SERIAL_RUNS runs: results are byte-identical across runs (the determinism
#: contract), so only the timing varies.
_SERIAL_RUN = None


def _serial_run():
    global _SERIAL_RUN
    if _SERIAL_RUN is None:
        runs = [_run(workers=1) for _ in range(max(1, SERIAL_RUNS))]
        best = max(runs, key=lambda run: run[1])
        _SERIAL_RUN = (*best, [round(run[1], 1) for run in runs])
    return _SERIAL_RUN


def test_explorer_serial_baseline(print_report):
    """The headline number bench-smoke regression-gates: serial schedules/sec.

    ISSUE 5 acceptance: the compiled step kernel (plus the classification
    fast paths) must lift serial throughput to >= 5x the seed's 961/s.  The
    gate only runs at the full schedule budget — smoke-sized runs measure
    startup, not throughput — and the floor is env-tunable for slower runner
    classes (BENCH_SERIAL_MIN_RATE).
    """
    result, rate, wall, run_rates = _serial_run()
    trie = {
        key: sum(exploration.cache_stats.get(f"trie_{key}", 0)
                 for exploration in result.levels.values())
        for key in ("slots_total", "slots_executed", "checkpoints_created", "restores")
    }
    _BASELINE["serial"] = {
        "schedules_per_sec": round(rate, 1), "wall_s": round(wall, 3),
        "run_rates": run_rates,
        "speedup_vs_seed": round(rate / SEED_SERIAL_RATE, 2),
        "phases": _phase_breakdown(result, wall, workers=1),
        "trie": dict(trie, replayed_step_ratio=round(
            trie["slots_executed"] / trie["slots_total"], 4) if trie["slots_total"] else 1.0),
    }
    print_report(
        f"Serial exploration baseline ({SCHEDULES} schedules x {len(LEVELS)} levels)",
        render_table(
            ["metric", "value"],
            [["schedules/sec", f"{rate:,.0f}"],
             ["speedup vs seed", f"{rate / SEED_SERIAL_RATE:.2f}x"],
             ["wall s", f"{wall:.2f}"],
             ["replayed-step ratio",
              f"{_BASELINE['serial']['trie']['replayed_step_ratio']:.2f}"]],
        ),
    )
    assert result.total_schedules() == SCHEDULES * len(LEVELS)
    if SCHEDULES >= 2000:
        assert rate >= SERIAL_MIN_RATE, (
            f"serial throughput {rate:,.0f}/s is below the 5x-seed bar "
            f"{SERIAL_MIN_RATE:,.0f}/s (tune via BENCH_SERIAL_MIN_RATE)")


def test_batch_kernel_vs_stepwise(print_report):
    """The ISSUE 7 gate: the vectorized batch-drain kernel must stay
    byte-equal to the stepwise trie walk at every supported level, keep the
    fast path fully occupied on a registered workload, and lift aggregate
    serial throughput to >= 20x seed.

    Correctness and throughput are separate passes: the first pass keys every
    outcome (byte-equality, occupancy), then the drain itself — execution
    only, no record rendering — is timed over BATCH_RUNS fresh executors per
    level and the best run recorded, the serial baseline's noise-damping
    methodology.
    """
    if not numpy_available():
        pytest.skip("batch kernel needs numpy (install the repro[fast] extra)")
    count = SCHEDULES
    _, programs = build_program_set(SPEC)
    schedules = schedule_space(programs, mode="sample", max_schedules=count,
                               seed=SEED).schedules

    def outcome_key(outcome):
        return (outcome.history.to_shorthand(), outcome.blocked_events,
                len(outcome.deadlocks), outcome.stalled,
                tuple(sorted((txn, state.value)
                             for txn, state in outcome.statuses.items())))

    def drain_time(level, mode, runs=1):
        best = float("inf")
        for _ in range(max(1, runs)):
            database, progs = build_program_set(SPEC)
            executor = TrieExecutor(database, progs, level, batch_kernel=mode)
            started = time.perf_counter()
            for _ in executor.run_batch(schedules):
                pass
            best = min(best, time.perf_counter() - started)
        return best

    levels = (IsolationLevelName.READ_COMMITTED,
              IsolationLevelName.REPEATABLE_READ,
              IsolationLevelName.SERIALIZABLE,
              IsolationLevelName.SNAPSHOT_ISOLATION,
              IsolationLevelName.ORACLE_READ_CONSISTENCY)
    rows = []
    section = {}
    total_time = 0.0
    for level in levels:
        database, progs = build_program_set(SPEC)
        stepwise = TrieExecutor(database, progs, level, batch_kernel="off")
        reference = [outcome_key(outcome)
                     for _, outcome in stepwise.run_batch(schedules)]
        database, progs = build_program_set(SPEC)
        batched = TrieExecutor(database, progs, level, batch_kernel="on")
        kernel = [outcome_key(outcome)
                  for _, outcome in batched.run_batch(schedules)]
        byte_equal = kernel == reference
        occupancy = batched.batch_stats.occupancy

        stepwise_time = drain_time(level, "off")
        batch_time = drain_time(level, "on", runs=BATCH_RUNS)
        total_time += batch_time
        speedup = stepwise_time / batch_time if batch_time else float("inf")
        rows.append([level.value, f"{count / stepwise_time:,.0f}",
                     f"{count / batch_time:,.0f}", f"{speedup:.2f}x",
                     f"{occupancy:.2f}", "yes" if byte_equal else "NO"])
        section[level.value] = {
            "stepwise_schedules_per_sec": round(count / stepwise_time, 1),
            "batch_schedules_per_sec": round(count / batch_time, 1),
            "speedup": round(speedup, 2),
            "occupancy": round(occupancy, 4),
            "byte_equal": byte_equal,
        }
        assert byte_equal, f"batch kernel diverged from stepwise at {level.value}"
        # Registered workloads are item-only: nothing may eject.
        assert occupancy == 1.0, f"fast path not fully occupied at {level.value}"
    aggregate = (count * len(levels)) / total_time
    section["aggregate"] = {
        "schedules_per_sec": round(aggregate, 1),
        "speedup_vs_seed": round(aggregate / SEED_SERIAL_RATE, 2),
        "min_rate": BATCH_MIN_RATE,
    }
    _BASELINE["batch_kernel"] = section
    print_report(
        f"Batch-drain kernel vs stepwise ({count} schedules/level, "
        f"aggregate {aggregate:,.0f}/s = "
        f"{aggregate / SEED_SERIAL_RATE:.1f}x seed)",
        render_table(["level", "stepwise/s", "batch/s", "speedup",
                      "occupancy", "byte=="], rows),
    )
    if SCHEDULES >= 2000:
        assert aggregate >= BATCH_MIN_RATE, (
            f"batch-kernel aggregate {aggregate:,.0f}/s is below the 20x-seed "
            f"bar {BATCH_MIN_RATE:,.0f}/s (tune via BENCH_BATCH_MIN_RATE)")


def test_explorer_throughput_serial(benchmark, print_report):
    result = benchmark.pedantic(
        lambda: explore(SPEC, ExploreOptions(
            levels=(IsolationLevelName.READ_COMMITTED,),
            mode="sample", max_schedules=min(SCHEDULES, 500), seed=SEED)),
        rounds=3, iterations=1,
    )
    stats = result.levels[IsolationLevelName.READ_COMMITTED].cache_stats
    classified = stats["hits"] + stats["misses"] + stats.get("shared_hits", 0)
    cache = {key: stats[key] for key in ("hits", "misses", "shared_hits")}
    _BASELINE["cache"] = dict(cache, hit_rate=round(stats["hits"] / classified, 4))
    print_report(
        f"Explorer classification caches ({min(SCHEDULES, 500)} sampled schedules)",
        render_table(["metric", "value"], sorted(cache.items())),
    )
    assert result.total_schedules() == min(SCHEDULES, 500)


def test_explorer_parallel_speedup_and_determinism(print_report):
    cores = available_workers()
    serial_result, serial_rate, serial_time, _ = _serial_run()
    # The rebuild target is 2 workers (the ISSUE 4 acceptance bar); more
    # workers only help when the cores exist.
    workers = 2
    parallel_result, parallel_rate, parallel_time = _run(workers=workers)

    fingerprint_match = serial_result.fingerprint() == parallel_result.fingerprint()
    speedup = parallel_rate / serial_rate
    phases = _phase_breakdown(parallel_result, parallel_time, workers=workers)
    # Split the parallel residual into its measured components so the batch
    # kernel's IPC impact is visible: pickling cost scales with chunk traffic,
    # spin-up is a fixed pool tax, and only the remainder is true waiting.
    pickling, spinup = _parallel_overheads(parallel_result, workers)
    residual = phases.pop("ipc_and_other_s")
    phases["chunk_pickling_s"] = round(pickling, 4)
    phases["pool_spinup_s"] = round(spinup, 4)
    phases["ipc_other_s"] = round(max(0.0, residual - pickling - spinup), 4)
    _BASELINE["parallel"] = {
        "workers": workers, "schedules_per_sec": round(parallel_rate, 1),
        "wall_s": round(parallel_time, 3), "speedup": round(speedup, 2),
        "phases": phases,
    }
    _BASELINE["fingerprint_match"] = fingerprint_match

    print_report(
        f"Explorer throughput: {SCHEDULES} schedules x {len(LEVELS)} levels "
        f"({cores} usable cores)",
        render_table(
            ["configuration", "schedules/sec", "wall s", "speedup"],
            [
                ["serial (1 worker)", f"{serial_rate:,.0f}", f"{serial_time:.2f}", "1.00x"],
                [f"parallel ({workers} workers)", f"{parallel_rate:,.0f}",
                 f"{parallel_time:.2f}", f"{speedup:.2f}x"],
            ],
        ),
    )
    assert fingerprint_match, "parallel exploration must be byte-identical to serial"
    min_speedup = float(os.environ.get("BENCH_PARALLEL_MIN_SPEEDUP", "1.5"))
    gate_ran = cores >= 2 and SCHEDULES >= 2000
    # Recorded so CI can assert the gate actually *ran* (a 1-core runner or a
    # smoke-sized budget skips it silently otherwise; see the `benchmarks`
    # job, which fails when `parallel_gate.ran` is false).
    _BASELINE["parallel_gate"] = {
        "ran": gate_ran,
        "min_speedup": min_speedup,
        "speedup": round(speedup, 2),
        "cores": cores,
        "schedules": SCHEDULES,
    }
    if gate_ran:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup}x speedup at 2 workers on {cores} cores, "
            f"got {speedup:.2f}x (tune via BENCH_PARALLEL_MIN_SPEEDUP)"
        )
    else:
        # On one core, two workers time-slice a single CPU and cannot beat
        # serial; smoke-sized runs pay fixed pool + manager startup against a
        # sub-second workload.  Only the fingerprint is load-bearing there.
        pytest.skip(f"speedup assertion needs >= 2 cores and >= 2000 schedules, "
                    f"have {cores} cores / {SCHEDULES} (measured {speedup:.2f}x)")


def test_trie_executor_vs_from_scratch(print_report):
    """The tentpole gate: byte-equal outcomes, strictly fewer executed slots."""
    level = IsolationLevelName.READ_COMMITTED
    count = min(SCHEDULES, 1000)
    _, programs = build_program_set(SPEC)
    schedules = schedule_space(programs, mode="sample", max_schedules=count,
                               seed=SEED).schedules

    def outcome_key(outcome):
        return (outcome.history.to_shorthand(), outcome.blocked_events,
                len(outcome.deadlocks), outcome.stalled)

    started = time.perf_counter()
    scratch = []
    runner = None
    for schedule in schedules:
        database, progs = build_program_set(SPEC)
        engine = make_engine(database, level)
        if runner is None:
            runner = ScheduleRunner(engine, progs, schedule, collect_traces=False)
            scratch.append(outcome_key(runner.run()))
        else:
            scratch.append(outcome_key(runner.replay(engine, schedule)))
    scratch_time = time.perf_counter() - started

    # This section measures the prefix-sharing trie walk itself; the batch
    # kernel (the default run_batch route) has its own section below.
    database, progs = build_program_set(SPEC)
    executor = TrieExecutor(database, progs, level, batch_kernel="off")
    trie = [None] * len(schedules)
    started = time.perf_counter()
    for index, outcome in executor.run_batch(schedules):
        trie[index] = outcome_key(outcome)
    trie_time = time.perf_counter() - started

    byte_equal = trie == scratch
    speedup = scratch_time / trie_time if trie_time else float("inf")
    stats = executor.stats
    _BASELINE["trie_executor"] = {
        "schedules": count,
        "level": level.value,
        "from_scratch_schedules_per_sec": round(count / scratch_time, 1),
        "trie_schedules_per_sec": round(count / trie_time, 1),
        "speedup": round(speedup, 2),
        "checkpoints_created": stats.checkpoints_created,
        "restores": stats.restores,
        "replayed_step_ratio": round(stats.replayed_ratio, 4),
        "byte_equal": byte_equal,
    }
    print_report(
        f"Trie executor vs from-scratch ({count} schedules, {level.value})",
        render_table(
            ["metric", "value"],
            [["from-scratch schedules/sec", f"{count / scratch_time:,.0f}"],
             ["trie schedules/sec", f"{count / trie_time:,.0f}"],
             ["speedup", f"{speedup:.2f}x"],
             ["replayed-step ratio", f"{stats.replayed_ratio:.2f}"],
             ["checkpoints", str(stats.checkpoints_created)]],
        ),
    )
    assert byte_equal, "trie-executed outcomes must be byte-equal to from-scratch"
    assert stats.slots_executed < stats.slots_total, \
        "prefix sharing must save at least some slots"


def test_compiled_kernel_vs_stepwise(print_report):
    """The tentpole gate: the compiled step kernel must be byte-equal to the
    stepwise path for every engine level and measurably faster."""
    count = min(SCHEDULES, 500)
    _, programs = build_program_set(SPEC)
    schedules = schedule_space(programs, mode="sample", max_schedules=count,
                               seed=SEED).schedules

    def outcome_key(outcome):
        return (outcome.history.to_shorthand(), outcome.blocked_events,
                len(outcome.deadlocks), outcome.stalled,
                tuple(sorted((txn, state.value)
                             for txn, state in outcome.statuses.items())))

    rows = []
    section = {}
    for level in (IsolationLevelName.READ_COMMITTED,
                  IsolationLevelName.REPEATABLE_READ,
                  IsolationLevelName.SERIALIZABLE,
                  IsolationLevelName.SNAPSHOT_ISOLATION,
                  IsolationLevelName.ORACLE_READ_CONSISTENCY):
        database, progs = build_program_set(SPEC)
        stepwise = TrieExecutor(database, progs, level, compiled=False)
        started = time.perf_counter()
        reference = [outcome_key(outcome)
                     for _, outcome in stepwise.run_batch(schedules)]
        stepwise_time = time.perf_counter() - started

        database, progs = build_program_set(SPEC)
        compiled = TrieExecutor(database, progs, level, compiled=True)
        started = time.perf_counter()
        kernel = [outcome_key(outcome)
                  for _, outcome in compiled.run_batch(schedules)]
        compiled_time = time.perf_counter() - started

        byte_equal = kernel == reference
        speedup = stepwise_time / compiled_time if compiled_time else float("inf")
        rows.append([level.value, f"{count / stepwise_time:,.0f}",
                     f"{count / compiled_time:,.0f}", f"{speedup:.2f}x",
                     "yes" if byte_equal else "NO"])
        section[level.value] = {
            "stepwise_schedules_per_sec": round(count / stepwise_time, 1),
            "compiled_schedules_per_sec": round(count / compiled_time, 1),
            "speedup": round(speedup, 2),
            "byte_equal": byte_equal,
        }
        assert byte_equal, f"compiled kernel diverged from stepwise at {level.value}"
    _BASELINE["compiled_kernel"] = section
    print_report(
        f"Compiled step kernel vs stepwise ({count} schedules/level)",
        render_table(["level", "stepwise/s", "compiled/s", "speedup", "byte=="],
                     rows),
    )


def test_schedule_outcome_memo(print_report):
    """Outcome memo: oversampled/exhaustive streams stop re-executing
    commutation-equivalent schedules, with coverage identical to the full run.
    """
    # A spec no other benchmark touches, so the per-process memo starts cold.
    memo_spec = ProgramSetSpec.make("contention", transactions=3, items=4,
                                    hot_items=2, operations_per_transaction=1)
    memo_levels = (IsolationLevelName.READ_COMMITTED,
                   IsolationLevelName.SNAPSHOT_ISOLATION)
    budget = 5000
    started = time.perf_counter()
    full = explore(memo_spec, ExploreOptions(
        levels=memo_levels, mode="sample", max_schedules=budget, seed=SEED,
        outcome_memo=False))
    full_time = time.perf_counter() - started
    started = time.perf_counter()
    memoized = explore(memo_spec, ExploreOptions(
        levels=memo_levels, mode="sample", max_schedules=budget, seed=SEED,
        outcome_memo=True))
    memo_time = time.perf_counter() - started

    assert coverage_mismatches(full, memoized, levels=memo_levels) == []
    covered = memoized.total_schedules()
    executed = memoized.executed_schedules()
    assert executed < covered, "the memo must skip at least some executions"
    speedup = full_time / memo_time if memo_time else float("inf")
    _BASELINE["outcome_memo"] = {
        "workload": memo_spec.describe(),
        "space": memoized.space.total,
        "covered": covered,
        "executed": executed,
        "reuse_ratio": round(covered / executed, 2) if executed else float("inf"),
        "full_wall_s": round(full_time, 3),
        "memo_wall_s": round(memo_time, 3),
        "speedup": round(speedup, 2),
        "coverage_matches": True,
    }
    print_report(
        f"Schedule-outcome memo ({covered} schedules over a "
        f"{memoized.space.total}-schedule space)",
        render_table(
            ["metric", "value"],
            [["covered schedules", f"{covered:,}"],
             ["executed schedules", f"{executed:,}"],
             ["reuse ratio", f"{covered / max(1, executed):.1f}x"],
             ["wall (no memo)", f"{full_time:.2f}s"],
             ["wall (memo)", f"{memo_time:.2f}s"],
             ["speedup", f"{speedup:.2f}x"]],
        ),
    )


def test_reduction_ratio_and_soundness(print_report):
    """Sleep-set reduction: >= 2x fewer executions, byte-equal coverage."""
    gate_levels = (IsolationLevelName.READ_COMMITTED,
                   IsolationLevelName.SNAPSHOT_ISOLATION,
                   IsolationLevelName.SERIALIZABLE)
    rows = []
    section = {}
    for spec in (
        ProgramSetSpec.make("sharded-increments"),
        ProgramSetSpec.make("contention", transactions=3, items=3, hot_items=1,
                            operations_per_transaction=1),
        ProgramSetSpec.make("bank-transfer"),
    ):
        full = explore(spec, ExploreOptions(levels=gate_levels,
                                            mode="exhaustive",
                                            max_schedules=5000))
        started = time.perf_counter()
        reduced = explore(spec, ExploreOptions(levels=gate_levels,
                                               mode="exhaustive",
                                               max_schedules=5000,
                                               reduction="sleep-set"))
        reduced_time = time.perf_counter() - started
        assert coverage_mismatches(full, reduced, levels=gate_levels) == []
        ratio = reduced.reduction_ratio()
        per_level_executed = reduced.executed_schedules() // len(gate_levels)
        rows.append([spec.describe(), str(reduced.space.total),
                     str(per_level_executed), f"{ratio:.2f}x", "yes"])
        section[spec.name] = {
            "space": reduced.space.total,
            "executed_per_level": per_level_executed,
            "ratio": round(ratio, 2),
            "coverage_matches": True,
            "wall_s": round(reduced_time, 3),
        }
    _BASELINE["reduction"] = section
    print_report(
        "Partial-order reduction (exhaustive spaces, coverage gated)",
        render_table(["program set", "space", "executed/level", "reduction",
                      "coverage =="], rows),
    )
    best = max(entry["ratio"] for entry in section.values())
    assert best >= 2.0, f"expected >= 2x reduction somewhere, best was {best:.2f}x"


def test_explored_table4_smoke(print_report):
    """Explorer-driven Table 4: the measured matrix must equal the paper's.

    Every scenario variant's interleaving space runs under every Table 4
    level (sleep-set reduced, level-aware oracle); the aggregated cells must
    match ``EXPECTED_TABLE_4`` cell for cell, with a witness interleaving
    behind every witnessed cell and every stalled/deadlocked schedule
    handled as a first-class non-manifesting result.  The summary lands in
    ``BENCH_explorer.json`` so CI archives the measured frequencies.
    """
    started = time.perf_counter()
    table = compute_table4_explored(max_schedules=TABLE4_BUDGET)
    duration = time.perf_counter() - started
    ok, mismatches = matrix_matches(EXPECTED_TABLE_4, table.possibilities())
    witnessed = [
        cell for row in table.cells.values() for cell in row.values()
        if cell.possibility is not Possibility.NOT_POSSIBLE
    ]
    _BASELINE["table4_explored"] = {
        "budget": TABLE4_BUDGET,
        "reduction": "sleep-set",
        "schedules": table.total_schedules(),
        "stalled": table.total_stalled(),
        "cells": sum(len(row) for row in table.cells.values()),
        "witnessed_cells": len(witnessed),
        "witnesses_recorded": sum(1 for cell in witnessed if cell.witness),
        "mismatches": len(mismatches),
        "wall_s": round(duration, 3),
        "schedules_per_sec": round(table.total_schedules() / duration, 1),
    }
    print_report(
        f"Explored Table 4 ({TABLE4_BUDGET} schedules/variant budget, "
        f"{duration:.1f}s)",
        table.render(),
    )
    assert ok, "\n".join(mismatches)
    assert all(cell.witness is not None for cell in witnessed)


def test_static_pruning_table4(print_report):
    """Static anomaly analysis: same Table 4, a large slice of the work skipped.

    ``static_pruning=True`` consults the level-aware static dependency graph
    before exploring each (scenario variant, level) scope and skips the ones
    proven impossible.  The gate is twofold: the pruned matrix must equal the
    unpruned one cell for cell (soundness — a pruned scope counts as
    non-manifesting, which is exactly what executing it would measure), and
    the pruned run must actually skip scopes and schedules (the point).
    """
    started = time.perf_counter()
    full = compute_table4_explored(max_schedules=TABLE4_BUDGET)
    full_time = time.perf_counter() - started
    started = time.perf_counter()
    pruned = compute_table4_explored(max_schedules=TABLE4_BUDGET,
                                     static_pruning=True)
    pruned_time = time.perf_counter() - started

    matrix_equal = pruned.possibilities() == full.possibilities()
    # variant_frequencies lists every variant, pruned ones included (at
    # frequency 0), so it is already the full scope count per cell.
    total_variants = sum(
        len(cell.variant_frequencies)
        for row in pruned.cells.values() for cell in row.values())
    saved = full.total_schedules() - pruned.total_schedules()
    speedup = full_time / pruned_time if pruned_time else float("inf")
    _BASELINE["static_pruning"] = {
        "budget": TABLE4_BUDGET,
        "variant_scopes": total_variants,
        "pruned_scopes": pruned.total_pruned_variants(),
        "schedules_full": full.total_schedules(),
        "schedules_pruned": pruned.total_schedules(),
        "schedules_saved_ratio": round(saved / full.total_schedules(), 4),
        "full_wall_s": round(full_time, 3),
        "pruned_wall_s": round(pruned_time, 3),
        "speedup": round(speedup, 2),
        "matrix_matches": matrix_equal,
    }
    print_report(
        f"Static pruning of the explored Table 4 ({TABLE4_BUDGET} "
        f"schedules/variant budget)",
        render_table(
            ["metric", "value"],
            [["variant scopes", str(total_variants)],
             ["statically pruned", str(pruned.total_pruned_variants())],
             ["schedules (full)", f"{full.total_schedules():,}"],
             ["schedules (pruned)", f"{pruned.total_schedules():,}"],
             ["schedules saved", f"{saved / full.total_schedules():.0%}"],
             ["speedup", f"{speedup:.2f}x"],
             ["matrix equal", "yes" if matrix_equal else "NO"]],
        ),
    )
    assert matrix_equal, "static pruning changed a Table 4 verdict"
    assert pruned.total_pruned_variants() > 0, \
        "static pruning skipped nothing — the analyzer stopped proving scopes"
    assert pruned.total_schedules() < full.total_schedules()


class _TimedStore:
    """Store proxy summing wall time spent inside store calls (serial path:
    every call is synchronous in the parent, so the sum is additive)."""

    def __init__(self, inner):
        self._inner = inner
        self.busy_s = 0.0

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr

        def call(*args, **kwargs):
            started = time.perf_counter()
            try:
                return attr(*args, **kwargs)
            finally:
                self.busy_s += time.perf_counter() - started

        return call


def test_persistence_store_overhead(print_report, tmp_path):
    """The ISSUE 8 gate: SqliteStore-backed serial exploration within 15%.

    Attaching a store pins execution batches to ``chunk_size`` (batches must
    align with the chunk-granular commit protocol), while store-free serial
    runs coarsen no-plan batches to max(chunk_size, 2048).  The store-free
    reference therefore runs at chunk_size=2048 so both paths drain identical
    batches — otherwise the ratio would measure batching, not persistence.

    The gated ratio is measured *within* each store-backed run: wall time
    spent inside store calls over total wall.  The store's true cost is
    ~0.1s-scale — smaller than this machine class's run-to-run wall noise —
    so a quotient of two independent runs' walls flaps; the in-run fraction
    shares cpufreq/cache state between numerator and denominator and is
    stable.  The store-free runs are still timed (and fingerprint-compared)
    for the absolute rates recorded alongside.  Also records the restart
    cost of a finished campaign (every chunk loaded, zero executed).
    """
    from repro.explorer.worker import _OUTCOME_MEMO_CACHE
    from repro.persist import SqliteStore

    chunk = 2048
    total = SCHEDULES * len(LEVELS)
    kwargs = dict(levels=LEVELS, mode="sample", max_schedules=SCHEDULES,
                  seed=SEED, workers=1, chunk_size=chunk)

    def timed(**extra):
        # Hermetic: earlier bench tests warm the process-global outcome memo,
        # which would make execution near-free and inflate the store's
        # relative cost.  Every timed run starts from a cold memo so the
        # ratio compares store-attached vs store-free *execution*, not
        # whichever cache state test ordering happened to leave behind.
        _OUTCOME_MEMO_CACHE.clear()
        started = time.perf_counter()
        result = explore(SPEC, ExploreOptions(**kwargs, **extra))
        return result, time.perf_counter() - started

    timed()  # warm the process-global testbed caches out of the timing

    walls = []
    ratios = []
    resume_wall = None
    chunks_committed = 0
    for attempt in range(max(1, PERSIST_RUNS)):
        plain, plain_wall = timed()
        store = SqliteStore(tmp_path / f"bench-{attempt}.sqlite")
        timed_store = _TimedStore(store)
        try:
            stored, store_wall = timed(store=timed_store, campaign_id="bench")
            assert stored.fingerprint() == plain.fingerprint(), \
                "attaching a store changed the record stream"
            ratios.append((store_wall - timed_store.busy_s) / store_wall)
            chunks_committed = sum(
                level.cache_stats.get("store_chunks_committed", 0)
                for level in stored.levels.values())
            if resume_wall is None:
                resumed, resume_wall = timed(store=store, campaign_id="bench")
                assert resumed.executed_schedules() == 0
                assert resumed.fingerprint() == plain.fingerprint()
        finally:
            store.close()
        walls.append((plain_wall, store_wall))

    plain_rate = total / min(wall for wall, _ in walls)
    store_rate = total / min(wall for _, wall in walls)
    ratio = sorted(ratios)[len(ratios) // 2]
    _BASELINE["persistence"] = {
        "backend": "sqlite",
        "chunk_size": chunk,
        "plain_schedules_per_sec": round(plain_rate, 1),
        "store_schedules_per_sec": round(store_rate, 1),
        "serial_overhead_ratio": round(ratio, 4),
        "run_ratios": [round(value, 4) for value in ratios],
        "chunks_committed": chunks_committed,
        "resume_wall_s": round(resume_wall, 3),
        "resume_schedules_per_sec": round(total / resume_wall, 1),
        "run_walls": [[round(p, 3), round(s, 3)] for p, s in walls],
    }
    print_report(
        f"Persistent campaign overhead ({SCHEDULES} schedules x "
        f"{len(LEVELS)} levels, SqliteStore)",
        render_table(
            ["metric", "value"],
            [["schedules/sec (no store)", f"{plain_rate:,.0f}"],
             ["schedules/sec (sqlite)", f"{store_rate:,.0f}"],
             ["in-run throughput ratio", f"{ratio:.3f}"],
             ["chunks committed", str(chunks_committed)],
             ["resume (0 executed) wall s", f"{resume_wall:.2f}"]],
        ),
    )
    if SCHEDULES >= 2000:
        assert ratio >= PERSIST_MIN_RATIO, (
            f"SqliteStore costs {1 - ratio:.0%} of serial throughput — over "
            f"the 15% bar (tune via BENCH_PERSIST_MIN_RATIO)")


def test_streaming_million_schedule_sampling(print_report):
    """Sampling STREAM_SCHEDULES schedules holds O(chunk) memory, no list."""
    _, programs = build_program_set(STREAM_SPEC)
    space = schedule_space(programs, mode="sample",
                           max_schedules=STREAM_SCHEDULES, seed=SEED)
    rss_before = _peak_rss_kb()
    started = time.perf_counter()
    count = 0
    chunk_sizes = set()
    for _, chunk in space.iter_chunks(4096):
        count += len(chunk)
        chunk_sizes.add(len(chunk))
    duration = time.perf_counter() - started
    rss_after = _peak_rss_kb()

    assert count == STREAM_SCHEDULES
    assert space._materialized is None, "streaming must not materialize the space"
    assert max(chunk_sizes) <= 4096
    rate = count / duration
    _BASELINE["streaming"] = {
        "sampled": count,
        "schedules_per_sec": round(rate, 1),
        "wall_s": round(duration, 3),
        "peak_rss_growth_kb": rss_after - rss_before,
        "materialized": False,
    }
    print_report(
        f"Streaming schedule generation ({count:,} sampled interleavings)",
        render_table(
            ["metric", "value"],
            [["schedules/sec", f"{rate:,.0f}"],
             ["wall s", f"{duration:.2f}"],
             ["peak RSS growth", f"{rss_after - rss_before} kB"],
             ["materialized list", "no"]],
        ),
    )


def test_distributed_campaign_throughput(print_report, tmp_path):
    """Distributed campaign throughput plus worker-kill recovery latency.

    Informational, not gated: on a single-core container two worker
    processes cannot beat serial (the committed baseline records the
    honest overhead), and the recovery latency is dominated by tunable
    lease/heartbeat intervals rather than code speed.  What *is* asserted
    at any speed is the contract: both the clean and the faulted run must
    reproduce the serial fingerprint byte for byte, and the kill must
    actually cost a respawn.
    """
    from repro.distrib import CampaignRunner, FaultPlan
    from repro.persist import SqliteStore, fingerprint_from_store

    workers = 2
    total = SCHEDULES * len(LEVELS)
    kwargs = dict(levels=LEVELS, mode="sample", max_schedules=SCHEDULES,
                  seed=SEED, chunk_size=64, workers=workers,
                  lease_duration=2.0, heartbeat_interval=0.25,
                  deadline_s=600.0)

    def run(name, faults):
        store = SqliteStore(tmp_path / f"distrib-{name}.sqlite")
        try:
            started = time.perf_counter()
            result = CampaignRunner(store, SPEC, faults=faults,
                                    **kwargs).run()
            wall = time.perf_counter() - started
            assert result.success, (name, result)
            fingerprint = fingerprint_from_store(store, result.campaign_id)
        finally:
            store.close()
        return result, wall, fingerprint

    control = explore(SPEC, ExploreOptions(
        levels=LEVELS, mode="sample", max_schedules=SCHEDULES,
        seed=SEED, chunk_size=64))
    clean, clean_wall, clean_fingerprint = run("clean", FaultPlan())
    assert clean_fingerprint == control.fingerprint(), \
        "distributing the campaign changed the record stream"

    plan = FaultPlan.parse(["kill:worker=0:ordinal=1"])
    faulted, fault_wall, fault_fingerprint = run("kill", plan)
    assert fault_fingerprint == control.fingerprint(), \
        "a worker kill changed the record stream"
    assert faulted.respawns >= 1
    recovery_ms = (faulted.recovery_latency_s or 0.0) * 1000

    _BASELINE["distrib"] = {
        "backend": "sqlite",
        "workers": workers,
        "schedules_per_sec": round(total / clean_wall, 1),
        "faulted_schedules_per_sec": round(total / fault_wall, 1),
        "clean_wall_s": round(clean_wall, 3),
        "fault_wall_s": round(fault_wall, 3),
        "fault_plan": list(plan.encode()),
        "respawns": faulted.respawns,
        "recovery_latency_ms": round(recovery_ms, 1),
        "byte_equal": True,
    }
    print_report(
        f"Distributed campaign ({SCHEDULES} schedules x {len(LEVELS)} "
        f"levels, {workers} workers, SqliteStore)",
        render_table(
            ["metric", "value"],
            [["schedules/sec (fault-free)", f"{total / clean_wall:,.0f}"],
             ["schedules/sec (worker killed)", f"{total / fault_wall:,.0f}"],
             ["workers respawned", str(faulted.respawns)],
             ["kill recovery latency", f"{recovery_ms:.0f} ms"],
             ["byte-identical to serial", "yes"]],
        ),
    )


def test_service_throughput(print_report):
    """ISSUE 10 acceptance: the online certifier under >= 50 concurrent clients.

    Drives the seeded load generator through the in-process classifier path
    (one :class:`OnlineClassifier` per client stream, per-op classify latency
    timed around each ``feed``), then verifies every stream's final verdict
    byte-equal against the offline ``BatchClassifier`` ground truth — the
    service's correctness contract, enforced here on every bench run, not
    just in the property suite.  Records anomalies/sec (certificates emitted
    over classify busy time) and p50/p99 per-op classify latency.  Client
    count honours ``BENCH_SERVICE_CLIENTS`` (default 50; smoke runs may
    shrink it, the committed baseline must not).
    """
    from repro.service import LoadConfig, run_load

    clients = int(os.environ.get("BENCH_SERVICE_CLIENTS", "50"))
    config = LoadConfig(clients=clients, transactions_per_client=20,
                        ops_per_transaction=6, seed=SEED)
    report = run_load(config, verify=True)
    assert report.byte_equal, \
        "online verdicts diverged from the offline classifier"
    assert report.certificates >= 1, \
        "load generator produced no certified anomalies"

    _BASELINE["service"] = {
        "clients": report.clients,
        "ops": report.ops,
        "certificates": report.certificates,
        "anomalies_per_sec": round(report.anomalies_per_sec, 1),
        "p50_classify_us": round(report.p50_classify_us, 1),
        "p99_classify_us": round(report.p99_classify_us, 1),
        "wall_s": round(report.wall_s, 3),
        "byte_equal": report.byte_equal,
    }
    print_report(
        f"Online certifier service ({report.clients} clients, "
        f"{report.ops} ops)",
        render_table(
            ["metric", "value"],
            [["anomalies/sec", f"{report.anomalies_per_sec:,.0f}"],
             ["certificates", str(report.certificates)],
             ["p50 classify latency", f"{report.p50_classify_us:.0f} us"],
             ["p99 classify latency", f"{report.p99_classify_us:.0f} us"],
             ["byte-equal to offline", "yes"]],
        ),
    )
