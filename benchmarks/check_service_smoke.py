"""Boot the online certifier service for real and certify anomalies over TCP.

The ``service-smoke`` CI job runs this script.  It stages the ISSUE 10
tentpole contract end to end, with a real server process and real sockets
rather than the in-process classifier path the benchmarks time:

1. **Boot** — start ``python -m repro serve`` as a subprocess on an
   OS-assigned port with a SQLite store attached, and parse the listening
   banner for the resolved address.
2. **Drive** — run the seeded load generator's TCP client fleet against it;
   every client opens its own stream, feeds its ops in bursts, and closes.
3. **Certify** — the run must emit at least one anomaly certificate, the
   server's stats must account for every op fed, and the certificates must
   be durably committed to the store (read back out of plain SQLite).
4. **Shutdown** — deliver SIGTERM; the server must print its stop banner
   and exit 0 (the clean-shutdown contract of the serve CLI).

The store file is left behind in ``--dir`` so CI can upload it as an
artifact (plain SQLite — any client can autopsy a failure).

Usage: python benchmarks/check_service_smoke.py [--dir OUTDIR]
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: The server subprocess needs ``repro`` importable too; prepending src/
#: works for both the pip-installed CI case (harmless) and bare checkouts.
SERVER_ENV = dict(os.environ)
SERVER_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(REPO_ROOT / "src")] + ([SERVER_ENV["PYTHONPATH"]]
                                if SERVER_ENV.get("PYTHONPATH") else []))

from repro.persist import SqliteStore  # noqa: E402
from repro.service import LoadConfig  # noqa: E402
from repro.service.loadgen import run_load_tcp  # noqa: E402

#: Modest client fleet: the smoke proves the protocol and lifecycle, the
#: benchmark section proves throughput at 50 clients.
CONFIG = LoadConfig(clients=8, transactions_per_client=10,
                    ops_per_transaction=6, seed=0)
BOOT_TIMEOUT_S = 30.0
CAMPAIGN = "service-ci"


def _wait_for_banner(proc: subprocess.Popen) -> "tuple[str, int]":
    """Read the serve CLI's listening banner and return (host, port)."""
    assert proc.stdout is not None
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before announcing its port "
                f"(rc={proc.poll()})")
        print(f"server: {line.rstrip()}")
        if line.startswith("certifier listening on "):
            address = line.split()[-1]
            host, _, port = address.rpartition(":")
            return host, int(port)
    raise SystemExit("server never printed its listening banner")


def main(outdir: Path) -> int:
    outdir.mkdir(parents=True, exist_ok=True)
    store_path = outdir / "service-smoke.sqlite"
    command = [sys.executable, "-m", "repro", "serve", "--port", "0",
               "--store", str(store_path), "--campaign", CAMPAIGN]
    proc = subprocess.Popen(command, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            env=SERVER_ENV)
    try:
        host, port = _wait_for_banner(proc)
        report = asyncio.run(run_load_tcp(host, port, CONFIG))
        print(f"drove {report.ops} ops over {report.clients} clients: "
              f"{report.certificates} certificates, "
              f"p99 classify {report.p99_classify_us:.0f} us")
        if report.certificates < 1:
            raise SystemExit("no certified anomalies — the load generator "
                             "must provoke at least one")

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
        remainder = proc.stdout.read() if proc.stdout else ""
        if remainder.strip():
            print(f"server: {remainder.strip()}")
        if rc != 0:
            raise SystemExit(f"server exited {rc} on SIGTERM, expected 0")
        if "certifier stopped" not in remainder:
            raise SystemExit("server never printed its stop banner")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    store = SqliteStore(store_path)
    try:
        persisted = store.load_certificates(CAMPAIGN)
    finally:
        store.close()
    print(f"store holds {len(persisted)} certificates for "
          f"campaign {CAMPAIGN!r}")
    if len(persisted) != report.certificates:
        raise SystemExit(
            f"store persisted {len(persisted)} certificates but the run "
            f"emitted {report.certificates}")
    print("service smoke OK: boot, certify, persist, clean shutdown")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="service-smoke-artifacts",
                        help="directory for the store artifact")
    sys.exit(main(Path(parser.parse_args().dir)))
