"""The paper's worked example histories (H1–H5, H1.SI) — Section 3 and 4.2.

For every catalogued history this bench re-derives, and checks against the
paper, (a) its serializability verdict, (b) the phenomena it exhibits, and
(c) the phenomena the paper says it avoids (the crux of the strict-vs-broad
argument).  It also times the detector pipeline itself over the catalogue and
over a large random corpus, and reproduces the H1.SI → H1.SI.SV mapping.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.catalog import CATALOG, by_name
from repro.core.dependency import is_serializable
from repro.core.mv_analysis import mv_is_serializable, mv_to_sv, same_dataflow
from repro.core.phenomena import detect_all
from repro.workloads.generators import history_corpus


def _analyse_catalogue():
    results = {}
    for name, entry in CATALOG.items():
        history = entry.history
        serializable = (mv_is_serializable(history) if entry.multiversion
                        else is_serializable(history))
        found = {code for code, occurrences in detect_all(history).items() if occurrences}
        results[name] = (serializable, found)
    return results


def test_paper_histories(benchmark, print_report):
    results = benchmark(_analyse_catalogue)
    rows = []
    for name, entry in CATALOG.items():
        serializable, found = results[name]
        rows.append([
            name,
            "serializable" if serializable else "non-serializable",
            ", ".join(sorted(found)) or "-",
            ", ".join(entry.exhibits) or "-",
            ", ".join(entry.avoids) or "-",
        ])
    print_report(
        "Paper histories: serializability and detected phenomena",
        render_table(["History", "Verdict", "Detected", "Paper: exhibits",
                      "Paper: avoids"], rows),
    )
    for name, entry in CATALOG.items():
        serializable, found = results[name]
        assert serializable == entry.serializable, name
        assert set(entry.exhibits) <= found, name
        assert not (set(entry.avoids) & found), name


def test_h1si_maps_to_the_serializable_sv_history(benchmark, print_report):
    h1_si = by_name("H1.SI").history

    def mapping():
        mapped = mv_to_sv(h1_si)
        return mapped, is_serializable(mapped), same_dataflow(h1_si, mapped)

    mapped, serializable, dataflow_preserved = benchmark(mapping)
    print_report(
        "H1.SI -> single-version mapping (Section 4.2)",
        render_table(["", "history"], [
            ["H1.SI", h1_si.to_shorthand()],
            ["mapped", mapped.to_shorthand()],
            ["paper's H1.SI.SV", by_name("H1.SI.SV").history.to_shorthand()],
        ]),
    )
    assert mapped.to_shorthand() == by_name("H1.SI.SV").history.to_shorthand()
    assert serializable and dataflow_preserved


def test_detector_throughput_on_random_corpus(benchmark):
    """Raw detector performance over 200 random histories (a scalability check
    for the analysis pipeline, not a paper figure)."""
    corpus = history_corpus(seed=21, count=200, transactions=4,
                            operations_per_transaction=4)

    def sweep():
        flagged = 0
        for history in corpus:
            if any(detect_all(history, codes=["P0", "P1", "P2"]).values()):
                flagged += 1
        return flagged

    flagged = benchmark(sweep)
    assert 0 < flagged <= len(corpus)
