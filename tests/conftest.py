"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.storage.database import Database
from repro.storage.rows import Row


@pytest.fixture
def bank_database() -> Database:
    """Two accounts whose balances sum to 100 (the H1/H2 setting)."""
    database = Database()
    database.set_item("x", 50)
    database.set_item("y", 50)
    return database


@pytest.fixture
def employees_database() -> Database:
    """A small employees table plus a materialized active-employee count."""
    database = Database()
    database.create_table("employees", [
        Row("e1", {"name": "Ada", "active": True}),
        Row("e2", {"name": "Grace", "active": True}),
        Row("e3", {"name": "Edsger", "active": False}),
    ])
    database.set_item("z", 2)
    return database


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random source."""
    return random.Random(12345)
