"""Unit tests for timestamps and the multiversion store (repro.mvcc)."""

from __future__ import annotations

from repro.mvcc.timestamps import TimestampAuthority
from repro.mvcc.version_store import VersionStore
from repro.storage.database import Database
from repro.storage.rows import Row


def _database() -> Database:
    database = Database()
    database.set_item("x", 50)
    database.create_table("employees", [Row("e1", {"active": True})])
    return database


class TestTimestampAuthority:
    def test_starts_at_zero_and_increments(self):
        clock = TimestampAuthority()
        assert clock.now() == 0
        assert clock.next_commit() == 1
        assert clock.next_commit() == 2
        assert clock.now() == 2

    def test_custom_start(self):
        assert TimestampAuthority(start=10).now() == 10


class TestItemVersions:
    def test_initial_state_is_version_zero(self):
        store = VersionStore(_database())
        value, version = store.read_item("x", 0)
        assert value == 50 and version == 0

    def test_later_snapshots_see_later_versions(self):
        store = VersionStore(_database())
        store.install_item("x", 99, commit_ts=1, txn=7)
        assert store.read_item("x", 0) == (50, 0)
        assert store.read_item("x", 1) == (99, 1)
        assert store.read_item("x", 5) == (99, 1)

    def test_unknown_item_is_invisible(self):
        store = VersionStore(_database())
        assert store.read_item("nope", 3) == (None, None)

    def test_item_created_later_is_invisible_to_old_snapshots(self):
        store = VersionStore(_database())
        store.install_item("new", 1, commit_ts=2, txn=7)
        assert store.read_item("new", 1) == (None, None)
        assert store.read_item("new", 2) == (1, 0)

    def test_item_modified_since(self):
        store = VersionStore(_database())
        assert not store.item_modified_since("x", 0)
        store.install_item("x", 99, commit_ts=3, txn=7)
        assert store.item_modified_since("x", 0)
        assert store.item_modified_since("x", 2)
        assert not store.item_modified_since("x", 3)

    def test_version_chain_is_exposed(self):
        store = VersionStore(_database())
        store.install_item("x", 99, commit_ts=1, txn=7)
        chain = store.item_versions("x")
        assert [version.value for version in chain] == [50, 99]
        assert chain[1].txn == 7


class TestRowVersions:
    def test_initial_rows_visible_at_zero(self):
        store = VersionStore(_database())
        row = store.visible_row("employees", "e1", 0)
        assert row is not None and row.get("active") is True

    def test_row_update_creates_new_version(self):
        store = VersionStore(_database())
        store.install_row("employees", "e1", Row("e1", {"active": False}), 1, txn=7)
        assert store.visible_row("employees", "e1", 0).get("active") is True
        assert store.visible_row("employees", "e1", 1).get("active") is False

    def test_row_delete_hides_the_row(self):
        store = VersionStore(_database())
        store.install_row("employees", "e1", None, 1, txn=7)
        assert store.visible_row("employees", "e1", 0) is not None
        assert store.visible_row("employees", "e1", 1) is None

    def test_insert_only_visible_after_commit_ts(self):
        store = VersionStore(_database())
        store.install_row("employees", "e2", Row("e2", {"active": True}), 2, txn=7)
        assert [row.key for row in store.visible_rows("employees", 1)] == ["e1"]
        assert [row.key for row in store.visible_rows("employees", 2)] == ["e1", "e2"]

    def test_row_modified_since(self):
        store = VersionStore(_database())
        assert not store.row_modified_since("employees", "e1", 0)
        store.install_row("employees", "e1", Row("e1", {"active": False}), 4, txn=7)
        assert store.row_modified_since("employees", "e1", 0)
        assert not store.row_modified_since("employees", "e1", 4)

    def test_visible_rows_returns_copies(self):
        store = VersionStore(_database())
        store.visible_rows("employees", 0)[0].set("active", False)
        assert store.visible_row("employees", "e1", 0).get("active") is True

    def test_row_keys_accumulate(self):
        store = VersionStore(_database())
        store.install_row("employees", "e5", Row("e5", {}), 1, txn=7)
        assert store.row_keys("employees") == ["e1", "e5"]
