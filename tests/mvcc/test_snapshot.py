"""Unit tests for the Snapshot Isolation engine (repro.mvcc.snapshot)."""

from __future__ import annotations


from repro.engine.interface import TransactionState
from repro.mvcc.snapshot import SnapshotIsolationEngine
from repro.storage.database import Database
from repro.storage.predicates import whole_table
from repro.storage.rows import Row


def _database() -> Database:
    database = Database()
    database.set_item("x", 50)
    database.set_item("y", 50)
    database.create_table("tasks", [Row("t1", {"hours": 3}), Row("t2", {"hours": 4})])
    return database


class TestSnapshotReads:
    def test_reads_never_block_and_see_the_snapshot(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 10)           # buffered, invisible to T2
        assert engine.read(2, "x").value == 50

    def test_transaction_reads_its_own_writes(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.write(1, "x", 10)
        assert engine.read(1, "x").value == 10

    def test_snapshot_is_fixed_at_start(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(2, "x", 99)
        engine.commit(2)
        # T1 started before T2 committed: it keeps seeing 50.
        assert engine.read(1, "x").value == 50

    def test_later_transactions_see_committed_changes(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.write(1, "x", 99)
        engine.commit(1)
        engine.begin(2)
        assert engine.read(2, "x").value == 99

    def test_read_reports_version_index(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        assert engine.read(1, "x").version == 0


class TestFirstCommitterWins:
    def test_second_committer_aborts(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 60)
        engine.write(2, "x", 70)
        assert engine.commit(2).is_ok
        result = engine.commit(1)
        assert result.is_aborted
        assert "first-committer-wins" in result.reason
        assert engine.state_of(1) is TransactionState.ABORTED
        assert engine.fcw_aborts == 1
        assert engine.database.get_item("x") == 70

    def test_disjoint_write_sets_both_commit(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 60)
        engine.write(2, "y", 70)
        assert engine.commit(1).is_ok
        assert engine.commit(2).is_ok

    def test_write_skew_is_admitted(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.read(1, "x"), engine.read(1, "y")
        engine.read(2, "x"), engine.read(2, "y")
        engine.write(1, "y", -40)
        engine.write(2, "x", -40)
        assert engine.commit(1).is_ok
        assert engine.commit(2).is_ok
        assert engine.database.get_item("x") + engine.database.get_item("y") < 0

    def test_fcw_can_be_disabled_for_the_ablation(self):
        engine = SnapshotIsolationEngine(_database(), first_committer_wins=False)
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 60)
        engine.write(2, "x", 70)
        assert engine.commit(2).is_ok
        assert engine.commit(1).is_ok            # lost update slips through
        assert engine.database.get_item("x") == 60

    def test_serial_rerun_after_abort_succeeds(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 60)
        engine.write(2, "x", 70)
        engine.commit(2)
        engine.commit(1)  # aborted by FCW
        engine.begin(3)
        engine.write(3, "x", 80)
        assert engine.commit(3).is_ok
        assert engine.database.get_item("x") == 80


class TestRowsAndPredicates:
    ALL = whole_table("AllTasks", "tasks")

    def test_select_sees_snapshot_plus_own_inserts(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.insert(1, "tasks", Row("t3", {"hours": 1}))
        assert len(engine.select(1, self.ALL).value) == 3
        assert len(engine.select(2, self.ALL).value) == 2

    def test_concurrent_disjoint_inserts_both_commit(self):
        """Section 4.2: the task-hours constraint can be violated under SI."""
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.insert(1, "tasks", Row("t3", {"hours": 1}))
        engine.insert(2, "tasks", Row("t4", {"hours": 1}))
        assert engine.commit(1).is_ok
        assert engine.commit(2).is_ok
        total = sum(row.get("hours") for row in engine.database.table("tasks"))
        assert total == 9  # > 8: the phantom the paper warns about

    def test_conflicting_row_updates_trigger_fcw(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.update_row(1, "tasks", "t1", {"hours": 5})
        engine.update_row(2, "tasks", "t1", {"hours": 6})
        assert engine.commit(1).is_ok
        assert engine.commit(2).is_aborted

    def test_duplicate_insert_is_rejected(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        assert engine.insert(1, "tasks", Row("t1", {"hours": 9})).is_aborted

    def test_delete_and_update_of_missing_row(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        assert engine.update_row(1, "tasks", "nope", {"hours": 1}).is_aborted
        assert engine.delete_row(1, "tasks", "nope").is_aborted

    def test_delete_hides_row_from_own_select_and_commits(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.delete_row(1, "tasks", "t1")
        assert len(engine.select(1, self.ALL).value) == 1
        engine.commit(1)
        assert not engine.database.table("tasks").has("t1")


class TestSnapshotCursors:
    def test_fetch_reads_from_the_snapshot(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(2, "x", 99)
        engine.commit(2)
        engine.open_cursor(1, "c", ["x"])
        assert engine.fetch(1, "c").value == 50

    def test_cursor_update_is_subject_to_fcw(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.open_cursor(1, "c", ["x"])
        engine.fetch(1, "c")
        engine.begin(2)
        engine.write(2, "x", 99)
        engine.commit(2)
        engine.cursor_update(1, "c", 123)
        assert engine.commit(1).is_aborted

    def test_voluntary_abort_discards_writes(self):
        engine = SnapshotIsolationEngine(_database())
        engine.begin(1)
        engine.write(1, "x", 99)
        engine.abort(1)
        assert engine.database.get_item("x") == 50
