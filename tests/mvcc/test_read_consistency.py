"""Unit tests for the Oracle-style Read Consistency engine (repro.mvcc.read_consistency)."""

from __future__ import annotations


from repro.mvcc.read_consistency import ReadConsistencyEngine
from repro.storage.database import Database
from repro.storage.predicates import whole_table
from repro.storage.rows import Row


def _database() -> Database:
    database = Database()
    database.set_item("x", 100)
    database.set_item("y", 50)
    database.create_table("tasks", [Row("t1", {"hours": 3})])
    return database


class TestStatementLevelSnapshots:
    def test_each_read_sees_the_latest_committed_state(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.begin(2)
        assert engine.read(1, "x").value == 100
        engine.write(2, "x", 120)
        engine.commit(2)
        # Unlike Snapshot Isolation, the next statement sees the new value.
        assert engine.read(1, "x").value == 120

    def test_uncommitted_writes_of_others_stay_invisible(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(2, "x", 120)
        assert engine.read(1, "x").value == 100

    def test_transaction_reads_its_own_buffered_writes(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.write(1, "x", 120)
        assert engine.read(1, "x").value == 120

    def test_select_uses_statement_timestamp(self):
        engine = ReadConsistencyEngine(_database())
        all_tasks = whole_table("All", "tasks")
        engine.begin(1)
        engine.begin(2)
        assert len(engine.select(1, all_tasks).value) == 1
        engine.insert(2, "tasks", Row("t2", {"hours": 1}))
        engine.commit(2)
        assert len(engine.select(1, all_tasks).value) == 2


class TestFirstWriterWins:
    def test_writers_block_on_writers(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 110)
        result = engine.write(2, "x", 120)
        assert result.is_blocked and result.blockers == frozenset({1})

    def test_commit_releases_write_locks(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 110)
        engine.commit(1)
        assert engine.write(2, "x", 120).is_ok

    def test_lost_update_is_possible_with_plain_reads(self):
        """The paper: Read Consistency allows general lost updates (P4)."""
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.begin(2)
        seen = engine.read(1, "x").value           # 100
        engine.write(2, "x", 120)
        engine.commit(2)
        engine.write(1, "x", seen + 30)            # overwrites 120 with 130
        engine.commit(1)
        assert engine.database.get_item("x") == 130

    def test_dirty_writes_are_impossible(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 1)
        assert engine.write(2, "x", 2).is_blocked

    def test_row_writes_take_locks_too(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.update_row(1, "tasks", "t1", {"hours": 5})
        assert engine.update_row(2, "tasks", "t1", {"hours": 6}).is_blocked

    def test_duplicate_insert_rejected(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        assert engine.insert(1, "tasks", Row("t1", {"hours": 9})).is_aborted


class TestCursorBehaviour:
    def test_cursor_members_are_as_of_open(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.open_cursor(1, "c", ["x"])
        engine.begin(2)
        engine.write(2, "x", 120)
        engine.commit(2)
        assert engine.fetch(1, "c").value == 100   # still the open-time value

    def test_cursor_lost_update_is_prevented(self):
        """The paper: Read Consistency disallows P4C."""
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.open_cursor(1, "c", ["x"])
        engine.fetch(1, "c")
        engine.begin(2)
        engine.write(2, "x", 120)
        engine.commit(2)
        result = engine.cursor_update(1, "c", 130)
        assert result.is_aborted
        assert engine.database.get_item("x") == 120

    def test_cursor_update_without_conflict_succeeds(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.open_cursor(1, "c", ["x"])
        engine.fetch(1, "c")
        engine.cursor_update(1, "c", 130)
        engine.commit(1)
        assert engine.database.get_item("x") == 130

    def test_abort_releases_locks_and_discards_writes(self):
        engine = ReadConsistencyEngine(_database())
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 110)
        engine.abort(1)
        assert engine.database.get_item("x") == 100
        assert engine.write(2, "x", 120).is_ok
