"""The unified ``python -m repro`` entry point: dispatch and exit codes."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_no_arguments_is_a_usage_error(capsys):
    assert main([]) == 2
    assert "usage: python -m repro" in capsys.readouterr().err


def test_unknown_command_is_a_usage_error(capsys):
    assert main(["frobnicate"]) == 2
    err = capsys.readouterr().err
    assert "unknown command 'frobnicate'" in err
    assert "usage: python -m repro" in err


@pytest.mark.parametrize("argv", [["-h"], ["--help"], ["help"]])
def test_help_prints_usage_and_exits_zero(argv, capsys):
    assert main(argv) == 0
    out = capsys.readouterr().out
    for command in ("campaign", "distrib", "serve", "bench"):
        assert command in out


def test_campaign_dispatches_to_persist_cli(tmp_path, capsys):
    store = str(tmp_path / "c.sqlite")
    assert main(["campaign", "run", "--store", store,
                 "--program-set", "increments", "--max-schedules", "40",
                 "--campaign", "entry"]) == 0
    assert "schedules executed this run" in capsys.readouterr().out
    assert main(["campaign", "list", "--store", store]) == 0
    assert "entry" in capsys.readouterr().out


def test_campaign_usage_error_exits_two(capsys):
    # argparse exits 2 on bad flags; the dispatcher must pass that through.
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "run", "--no-such-flag"])
    assert excinfo.value.code == 2


def test_bench_runs_in_process(capsys):
    assert main(["bench", "--clients", "2", "--transactions", "4",
                 "--in-process"]) == 0
    out = capsys.readouterr().out
    assert '"byte_equal": true' in out
