"""Unit tests for rows and tables (repro.storage.rows)."""

from __future__ import annotations

import pytest

from repro.storage.rows import Row, Table


class TestRow:
    def test_attribute_access(self):
        row = Row("e1", {"name": "Ada", "active": True})
        assert row.get("name") == "Ada"
        assert row["active"] is True
        assert "name" in row
        assert row.get("missing", 0) == 0

    def test_set_and_setitem(self):
        row = Row("e1")
        row.set("hours", 3)
        row["hours"] = 4
        assert row.get("hours") == 4

    def test_updated_returns_a_copy(self):
        row = Row("e1", {"active": True})
        changed = row.updated(active=False)
        assert changed.get("active") is False
        assert row.get("active") is True
        assert changed.key == "e1"

    def test_copy_is_deep(self):
        row = Row("e1", {"tags": ["a"]})
        cloned = row.copy()
        cloned.get("tags").append("b")
        assert row.get("tags") == ["a"]

    def test_value_equality(self):
        assert Row("e1", {"a": 1}) == Row("e1", {"a": 1})
        assert Row("e1", {"a": 1}) != Row("e1", {"a": 2})


class TestTable:
    def test_insert_and_get(self):
        table = Table("employees")
        table.insert(Row("e1", {"name": "Ada"}))
        assert table.has("e1")
        assert table.get("e1").get("name") == "Ada"
        assert len(table) == 1

    def test_duplicate_insert_rejected(self):
        table = Table("employees", [Row("e1")])
        with pytest.raises(KeyError):
            table.insert(Row("e1"))

    def test_upsert_replaces(self):
        table = Table("employees", [Row("e1", {"n": 1})])
        table.upsert(Row("e1", {"n": 2}))
        assert table.get("e1").get("n") == 2

    def test_update_mutates_in_place(self):
        table = Table("employees", [Row("e1", {"active": True})])
        table.update("e1", active=False)
        assert table.get("e1").get("active") is False

    def test_update_missing_row_raises(self):
        with pytest.raises(KeyError):
            Table("t").update("nope", a=1)

    def test_delete_returns_row(self):
        table = Table("t", [Row("k", {"v": 1})])
        removed = table.delete("k")
        assert removed.get("v") == 1
        assert not table.has("k")
        with pytest.raises(KeyError):
            table.delete("k")

    def test_select_filters_rows(self):
        table = Table("t", [Row("a", {"v": 1}), Row("b", {"v": 2}), Row("c", {"v": 3})])
        assert [row.key for row in table.select(lambda r: r.get("v") >= 2)] == ["b", "c"]

    def test_iteration_and_keys_preserve_insertion_order(self):
        table = Table("t", [Row("b"), Row("a")])
        assert table.keys() == ["b", "a"]
        assert [row.key for row in table] == ["b", "a"]

    def test_copy_is_independent(self):
        table = Table("t", [Row("a", {"v": 1})])
        cloned = table.copy()
        cloned.update("a", v=99)
        assert table.get("a").get("v") == 1
