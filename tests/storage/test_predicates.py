"""Unit tests for predicates and phantom-aware coverage (repro.storage.predicates)."""

from __future__ import annotations


from repro.storage.predicates import (
    Predicate,
    attribute_between,
    attribute_equals,
    whole_table,
)
from repro.storage.rows import Row


ACTIVE = attribute_equals("Active", "employees", "active", True)
HOURS_SMALL = attribute_between("Small", "tasks", "hours", 0, 4)


class TestMatching:
    def test_attribute_equals(self):
        assert ACTIVE.matches(Row("e1", {"active": True}))
        assert not ACTIVE.matches(Row("e2", {"active": False}))
        assert not ACTIVE.matches(Row("e3", {}))

    def test_attribute_between(self):
        assert HOURS_SMALL.matches(Row("t1", {"hours": 4}))
        assert not HOURS_SMALL.matches(Row("t2", {"hours": 5}))
        assert not HOURS_SMALL.matches(Row("t3", {}))

    def test_whole_table_matches_everything(self):
        predicate = whole_table("All", "tasks")
        assert predicate.matches(Row("anything", {}))


class TestWriteCoverage:
    """The paper's 'would cause to satisfy' test (Section 2.3)."""

    def test_insert_into_predicate_is_covered(self):
        assert ACTIVE.covers_write("employees", None, Row("e9", {"active": True}))

    def test_insert_outside_predicate_is_not_covered(self):
        assert not ACTIVE.covers_write("employees", None, Row("e9", {"active": False}))

    def test_update_entering_the_predicate_is_covered(self):
        before = Row("e1", {"active": False})
        after = Row("e1", {"active": True})
        assert ACTIVE.covers_write("employees", before, after)

    def test_update_leaving_the_predicate_is_covered(self):
        before = Row("e1", {"active": True})
        after = Row("e1", {"active": False})
        assert ACTIVE.covers_write("employees", before, after)

    def test_delete_of_covered_row_is_covered(self):
        assert ACTIVE.covers_write("employees", Row("e1", {"active": True}), None)

    def test_unrelated_update_is_not_covered(self):
        before = Row("e1", {"active": False, "name": "a"})
        after = Row("e1", {"active": False, "name": "b"})
        assert not ACTIVE.covers_write("employees", before, after)

    def test_other_table_is_never_covered(self):
        assert not ACTIVE.covers_write("tasks", None, Row("t1", {"active": True}))


class TestPredicateOverlap:
    def test_different_tables_never_overlap(self):
        assert not ACTIVE.may_overlap(HOURS_SMALL)

    def test_same_table_without_ranges_is_conservative(self):
        free_form = Predicate("Custom", "employees", lambda row: row.get("name") == "Ada")
        assert ACTIVE.may_overlap(free_form)
        assert free_form.may_overlap(ACTIVE)

    def test_disjoint_ranges_do_not_overlap(self):
        low = attribute_between("Low", "tasks", "hours", 0, 3)
        high = attribute_between("High", "tasks", "hours", 5, 9)
        assert not low.may_overlap(high)
        assert not high.may_overlap(low)

    def test_touching_ranges_overlap(self):
        low = attribute_between("Low", "tasks", "hours", 0, 5)
        high = attribute_between("High", "tasks", "hours", 5, 9)
        assert low.may_overlap(high)

    def test_equal_value_predicates_overlap_on_same_value(self):
        active_again = attribute_equals("Active2", "employees", "active", True)
        inactive = attribute_equals("Inactive", "employees", "active", False)
        assert ACTIVE.may_overlap(active_again)
        assert not ACTIVE.may_overlap(inactive)

    def test_whole_table_overlaps_with_anything_in_table(self):
        assert whole_table("All", "employees").may_overlap(ACTIVE)
