"""Unit tests for the constraint factories (repro.storage.constraints)."""

from __future__ import annotations

from repro.storage.constraints import (
    items_equal,
    items_sum_at_least,
    items_sum_equals,
    predicate_count_matches_item,
    predicate_sum_at_most,
)
from repro.storage.database import Database
from repro.storage.predicates import attribute_equals, whole_table
from repro.storage.rows import Row


def _bank() -> Database:
    database = Database()
    database.set_item("x", 50)
    database.set_item("y", 50)
    return database


class TestItemConstraints:
    def test_items_equal(self):
        database = Database()
        database.set_item("x", 1)
        database.set_item("y", 1)
        constraint = items_equal("x", "y")
        assert constraint.holds(database)
        database.set_item("y", 2)
        assert not constraint.holds(database)

    def test_items_sum_equals(self):
        database = _bank()
        constraint = items_sum_equals(("x", "y"), 100)
        assert constraint.holds(database)
        database.set_item("x", 10)
        assert not constraint.holds(database)

    def test_items_sum_at_least(self):
        database = _bank()
        constraint = items_sum_at_least(("x", "y"), 0)
        assert constraint.holds(database)
        database.set_item("x", -40)
        database.set_item("y", -40)
        assert not constraint.holds(database)

    def test_missing_items_count_as_zero(self):
        constraint = items_sum_equals(("x", "y"), 0)
        assert constraint.holds(Database())


class TestPredicateConstraints:
    def test_count_matches_item(self):
        database = Database()
        database.create_table("employees", [
            Row("e1", {"active": True}), Row("e2", {"active": True}),
        ])
        database.set_item("z", 2)
        active = attribute_equals("Active", "employees", "active", True)
        constraint = predicate_count_matches_item(active, "z")
        assert constraint.holds(database)
        database.table("employees").insert(Row("e3", {"active": True}))
        assert not constraint.holds(database)
        database.set_item("z", 3)
        assert constraint.holds(database)

    def test_predicate_sum_at_most(self):
        database = Database()
        database.create_table("tasks", [Row("t1", {"hours": 3}), Row("t2", {"hours": 4})])
        constraint = predicate_sum_at_most(whole_table("All", "tasks"), "hours", 8)
        assert constraint.holds(database)
        database.table("tasks").insert(Row("t3", {"hours": 1}))
        assert constraint.holds(database)
        database.table("tasks").insert(Row("t4", {"hours": 1}))
        assert not constraint.holds(database)

    def test_constraint_names_are_informative(self):
        constraint = items_equal("x", "y")
        assert "x" in constraint.name and "y" in constraint.name
        assert str(constraint) == constraint.name
