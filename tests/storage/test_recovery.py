"""Unit tests for before-image recovery (repro.storage.recovery).

Includes the paper's Section 3 demonstration of why Dirty Writes break
before-image recovery: undoing w1[x] after w2[x] wipes out T2's update.
"""

from __future__ import annotations

from repro.storage.database import Database
from repro.storage.recovery import UndoLog
from repro.storage.rows import Row


def _db_with_item() -> Database:
    database = Database()
    database.set_item("x", 50)
    return database


class TestItemUndo:
    def test_undo_restores_before_image(self):
        database = _db_with_item()
        log = UndoLog()
        log.record_item(1, database, "x")
        database.set_item("x", 10)
        log.undo(1, database)
        assert database.get_item("x") == 50

    def test_undo_applies_in_reverse_order(self):
        database = _db_with_item()
        log = UndoLog()
        log.record_item(1, database, "x")
        database.set_item("x", 10)
        log.record_item(1, database, "x")
        database.set_item("x", 20)
        log.undo(1, database)
        assert database.get_item("x") == 50

    def test_undo_of_new_item_removes_it(self):
        database = Database()
        log = UndoLog()
        log.record_item(1, database, "brand_new")
        database.set_item("brand_new", 1)
        log.undo(1, database)
        assert not database.has_item("brand_new")

    def test_forget_discards_records(self):
        database = _db_with_item()
        log = UndoLog()
        log.record_item(1, database, "x")
        database.set_item("x", 10)
        log.forget(1)
        log.undo(1, database)  # nothing left to undo
        assert database.get_item("x") == 10

    def test_undo_is_per_transaction(self):
        database = _db_with_item()
        database.set_item("y", 5)
        log = UndoLog()
        log.record_item(1, database, "x")
        database.set_item("x", 10)
        log.record_item(2, database, "y")
        database.set_item("y", 6)
        log.undo(1, database)
        assert database.get_item("x") == 50
        assert database.get_item("y") == 6


class TestRowUndo:
    def test_undo_insert_deletes_the_row(self):
        database = Database()
        database.create_table("t")
        log = UndoLog()
        log.record_row_insert(1, "t", "a")
        database.table("t").insert(Row("a", {"v": 1}))
        log.undo(1, database)
        assert not database.table("t").has("a")

    def test_undo_update_restores_attributes(self):
        database = Database()
        database.create_table("t", [Row("a", {"v": 1})])
        log = UndoLog()
        log.record_row_update(1, "t", database.table("t").get("a"))
        database.table("t").update("a", v=99)
        log.undo(1, database)
        assert database.table("t").get("a").get("v") == 1

    def test_undo_delete_reinserts_the_row(self):
        database = Database()
        database.create_table("t", [Row("a", {"v": 1})])
        log = UndoLog()
        log.record_row_delete(1, "t", database.table("t").get("a"))
        database.table("t").delete("a")
        log.undo(1, database)
        assert database.table("t").get("a").get("v") == 1


class TestDirtyWriteRecoveryHazard:
    def test_undoing_a_dirty_write_wipes_out_the_other_update(self):
        """The paper's w1[x] w2[x] a1 example: restoring T1's before-image
        destroys T2's update — the reason P0 must be forbidden at every level."""
        database = _db_with_item()
        log = UndoLog()
        # w1[x=10]
        log.record_item(1, database, "x")
        database.set_item("x", 10)
        # w2[x=20] — a dirty write over T1's uncommitted value.
        log.record_item(2, database, "x")
        database.set_item("x", 20)
        # a1: restore T1's before-image of 50...
        log.undo(1, database)
        # ...and T2's update (20) is gone, even though T2 never aborted.
        assert database.get_item("x") == 50
        # Worse, if T2 now aborts, its before-image (10) resurrects T1's
        # aborted write.
        log.undo(2, database)
        assert database.get_item("x") == 10

    def test_record_counts(self):
        database = _db_with_item()
        log = UndoLog()
        log.record_item(1, database, "x")
        log.record_item(2, database, "x")
        assert len(log) == 2
        assert len(log.records_of(1)) == 1
        assert log.records_of(1)[0].describe()
