"""Unit tests for the in-memory database (repro.storage.database)."""

from __future__ import annotations

import pytest

from repro.storage.constraints import items_sum_equals
from repro.storage.database import Database
from repro.storage.predicates import attribute_equals
from repro.storage.rows import Row


class TestItems:
    def test_set_get_delete(self):
        database = Database()
        database.set_item("x", 50)
        assert database.get_item("x") == 50
        assert database.has_item("x")
        database.delete_item("x")
        assert not database.has_item("x")
        assert database.get_item("x", "missing") == "missing"

    def test_items_returns_a_copy(self):
        database = Database()
        database.set_item("x", 1)
        snapshot = database.items()
        snapshot["x"] = 99
        assert database.get_item("x") == 1


class TestTables:
    def test_create_and_select(self):
        database = Database()
        database.create_table("employees", [Row("e1", {"active": True}),
                                            Row("e2", {"active": False})])
        active = attribute_equals("Active", "employees", "active", True)
        assert [row.key for row in database.select(active)] == ["e1"]

    def test_duplicate_table_rejected(self):
        database = Database()
        database.create_table("t")
        with pytest.raises(KeyError):
            database.create_table("t")

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            Database().table("nope")

    def test_has_table(self):
        database = Database()
        database.create_table("t")
        assert database.has_table("t")
        assert not database.has_table("u")


class TestConstraints:
    def test_constraint_checking(self):
        database = Database()
        database.set_item("x", 50)
        database.set_item("y", 50)
        database.add_constraint(items_sum_equals(("x", "y"), 100))
        assert database.constraints_hold()
        database.set_item("x", 10)
        assert not database.constraints_hold()
        assert len(database.violated_constraints()) == 1

    def test_constraints_listing(self):
        database = Database()
        constraint = items_sum_equals(("x", "y"), 0)
        database.add_constraint(constraint)
        assert database.constraints == [constraint]


class TestSnapshots:
    def test_snapshot_and_restore(self):
        database = Database()
        database.set_item("x", 50)
        database.create_table("t", [Row("a", {"v": 1})])
        snapshot = database.snapshot()
        database.set_item("x", 99)
        database.table("t").update("a", v=2)
        database.restore(snapshot)
        assert database.get_item("x") == 50
        assert database.table("t").get("a").get("v") == 1

    def test_snapshots_compare_by_value(self):
        database = Database()
        database.set_item("x", 1)
        first = database.snapshot()
        second = database.snapshot()
        assert first == second
        database.set_item("x", 2)
        assert database.snapshot() != first

    def test_snapshot_is_isolated_from_later_mutation(self):
        database = Database()
        database.create_table("t", [Row("a", {"v": [1]})])
        snapshot = database.snapshot()
        database.table("t").get("a").get("v").append(2)
        assert snapshot.tables["t"].get("a").get("v") == [1]

    def test_clone_is_independent_but_keeps_constraints(self):
        database = Database()
        database.set_item("x", 1)
        database.set_item("y", 1)
        database.add_constraint(items_sum_equals(("x", "y"), 2))
        clone = database.clone()
        clone.set_item("x", 5)
        assert database.get_item("x") == 1
        assert not clone.constraints_hold()
        assert database.constraints_hold()
