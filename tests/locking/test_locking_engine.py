"""Unit tests for the locking engine (repro.locking.engine).

These exercise the engine directly (without the schedule runner) so that
blocking, lock release, undo, and cursor behaviour can be asserted one call at
a time.
"""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName
from repro.engine.interface import EngineError, TransactionState
from repro.locking.engine import LockingEngine
from repro.storage.database import Database
from repro.storage.predicates import attribute_equals
from repro.storage.rows import Row


def _database() -> Database:
    database = Database()
    database.set_item("x", 50)
    database.set_item("y", 50)
    database.create_table("employees", [
        Row("e1", {"active": True}), Row("e2", {"active": False}),
    ])
    return database


ACTIVE = attribute_equals("Active", "employees", "active", True)


def _engine(level=IsolationLevelName.SERIALIZABLE) -> LockingEngine:
    return LockingEngine(_database(), level=level)


class TestBasicReadWrite:
    def test_read_returns_current_value(self):
        engine = _engine()
        engine.begin(1)
        assert engine.read(1, "x").value == 50

    def test_write_applies_in_place(self):
        engine = _engine()
        engine.begin(1)
        engine.write(1, "x", 99)
        assert engine.database.get_item("x") == 99

    def test_commit_releases_locks(self):
        engine = _engine()
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 99)
        assert engine.write(2, "x", 100).is_blocked
        engine.commit(1)
        assert engine.write(2, "x", 100).is_ok

    def test_abort_restores_before_images(self):
        engine = _engine()
        engine.begin(1)
        engine.write(1, "x", 99)
        engine.abort(1)
        assert engine.database.get_item("x") == 50
        assert engine.state_of(1) is TransactionState.ABORTED

    def test_operations_after_abort_report_aborted(self):
        engine = _engine()
        engine.begin(1)
        engine.abort(1, reason="test")
        assert engine.read(1, "x").is_aborted
        assert engine.abort_reason(1) == "test"

    def test_operations_after_commit_raise(self):
        engine = _engine()
        engine.begin(1)
        engine.commit(1)
        with pytest.raises(EngineError):
            engine.read(1, "x")

    def test_unknown_transaction_raises(self):
        engine = _engine()
        with pytest.raises(EngineError):
            engine.read(99, "x")

    def test_double_begin_rejected(self):
        engine = _engine()
        engine.begin(1)
        with pytest.raises(EngineError):
            engine.begin(1)


class TestBlockingByLevel:
    def test_serializable_readers_block_on_writers(self):
        engine = _engine(IsolationLevelName.SERIALIZABLE)
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 99)
        result = engine.read(2, "x")
        assert result.is_blocked and result.blockers == frozenset({1})

    def test_read_uncommitted_readers_see_dirty_data(self):
        engine = _engine(IsolationLevelName.READ_UNCOMMITTED)
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 99)
        assert engine.read(2, "x").value == 99  # dirty read

    def test_read_committed_releases_read_locks_immediately(self):
        engine = _engine(IsolationLevelName.READ_COMMITTED)
        engine.begin(1)
        engine.begin(2)
        engine.read(1, "x")
        assert engine.write(2, "x", 99).is_ok  # short read lock already gone

    def test_repeatable_read_holds_read_locks(self):
        engine = _engine(IsolationLevelName.REPEATABLE_READ)
        engine.begin(1)
        engine.begin(2)
        engine.read(1, "x")
        assert engine.write(2, "x", 99).is_blocked

    def test_degree0_allows_dirty_writes(self):
        engine = _engine(IsolationLevelName.DEGREE_0)
        engine.begin(1)
        engine.begin(2)
        engine.write(1, "x", 1)
        assert engine.write(2, "x", 2).is_ok


class TestPredicatesAndRows:
    def test_select_returns_matching_row_copies(self):
        engine = _engine()
        engine.begin(1)
        rows = engine.select(1, ACTIVE).value
        assert [row.key for row in rows] == ["e1"]
        rows[0].set("active", False)
        assert engine.database.table("employees").get("e1").get("active") is True

    def test_serializable_predicate_lock_blocks_covered_insert(self):
        engine = _engine(IsolationLevelName.SERIALIZABLE)
        engine.begin(1)
        engine.begin(2)
        engine.select(1, ACTIVE)
        blocked = engine.insert(2, "employees", Row("e9", {"active": True}))
        assert blocked.is_blocked

    def test_serializable_predicate_lock_allows_uncovered_insert(self):
        engine = _engine(IsolationLevelName.SERIALIZABLE)
        engine.begin(1)
        engine.begin(2)
        engine.select(1, ACTIVE)
        allowed = engine.insert(2, "employees", Row("e9", {"active": False}))
        assert allowed.is_ok

    def test_repeatable_read_predicate_lock_is_short(self):
        engine = _engine(IsolationLevelName.REPEATABLE_READ)
        engine.begin(1)
        engine.begin(2)
        engine.select(1, ACTIVE)
        assert engine.insert(2, "employees", Row("e9", {"active": True})).is_ok

    def test_update_and_delete_roll_back_on_abort(self):
        engine = _engine()
        engine.begin(1)
        engine.update_row(1, "employees", "e1", {"active": False})
        engine.delete_row(1, "employees", "e2")
        engine.abort(1)
        table = engine.database.table("employees")
        assert table.get("e1").get("active") is True
        assert table.has("e2")

    def test_update_of_missing_row_is_an_error_result(self):
        engine = _engine()
        engine.begin(1)
        assert engine.update_row(1, "employees", "nope", {"active": False}).is_aborted
        assert engine.delete_row(1, "employees", "nope").is_aborted

    def test_insert_rolls_back_on_abort(self):
        engine = _engine()
        engine.begin(1)
        engine.insert(1, "employees", Row("e9", {"active": True}))
        engine.abort(1)
        assert not engine.database.table("employees").has("e9")


class TestCursors:
    def test_fetch_walks_the_item_list(self):
        engine = _engine(IsolationLevelName.CURSOR_STABILITY)
        engine.begin(1)
        engine.open_cursor(1, "c", ["x", "y"])
        assert engine.fetch(1, "c").value == 50
        assert engine.fetch(1, "c").item == "y"
        assert engine.fetch(1, "c").is_aborted  # exhausted

    def test_cursor_stability_holds_lock_on_current_row_only(self):
        engine = _engine(IsolationLevelName.CURSOR_STABILITY)
        engine.begin(1)
        engine.begin(2)
        engine.open_cursor(1, "c", ["x", "y"])
        engine.fetch(1, "c")                       # current is x
        assert engine.write(2, "x", 99).is_blocked  # x is protected
        engine.fetch(1, "c")                        # cursor moves to y
        assert engine.write(2, "x", 99).is_ok       # x is released
        assert engine.write(2, "y", 99).is_blocked  # y now protected

    def test_close_cursor_releases_the_lock(self):
        engine = _engine(IsolationLevelName.CURSOR_STABILITY)
        engine.begin(1)
        engine.begin(2)
        engine.open_cursor(1, "c", ["x"])
        engine.fetch(1, "c")
        engine.close_cursor(1, "c")
        assert engine.write(2, "x", 99).is_ok

    def test_cursor_update_writes_current_item(self):
        engine = _engine(IsolationLevelName.CURSOR_STABILITY)
        engine.begin(1)
        engine.open_cursor(1, "c", ["x"])
        engine.fetch(1, "c")
        engine.cursor_update(1, "c", 123)
        assert engine.database.get_item("x") == 123

    def test_cursor_update_before_fetch_is_an_error_result(self):
        engine = _engine(IsolationLevelName.CURSOR_STABILITY)
        engine.begin(1)
        engine.open_cursor(1, "c", ["x"])
        assert engine.cursor_update(1, "c", 1).is_aborted

    def test_unknown_cursor_raises(self):
        engine = _engine(IsolationLevelName.CURSOR_STABILITY)
        engine.begin(1)
        with pytest.raises(EngineError):
            engine.fetch(1, "nope")

    def test_open_cursor_with_no_items_is_rejected(self):
        engine = _engine(IsolationLevelName.CURSOR_STABILITY)
        engine.begin(1)
        assert engine.open_cursor(1, "c", []).is_aborted
