"""Unit tests for deadlock detection (repro.locking.deadlock)."""

from __future__ import annotations

from repro.locking.deadlock import WaitsForGraph


class TestWaitsForGraph:
    def test_no_cycle_in_a_chain(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {2})
        graph.set_waits(2, {3})
        assert graph.find_cycle() is None
        assert graph.detect() is None

    def test_two_transaction_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {2})
        graph.set_waits(2, {1})
        cycle = graph.find_cycle()
        assert cycle is not None and set(cycle) == {1, 2}

    def test_three_transaction_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {2})
        graph.set_waits(2, {3})
        graph.set_waits(3, {1})
        deadlock = graph.detect()
        assert deadlock is not None
        assert set(deadlock.cycle) == {1, 2, 3}

    def test_default_victim_is_the_youngest(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {5})
        graph.set_waits(5, {1})
        assert graph.detect().victim == 5

    def test_custom_victim_policy(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {2})
        graph.set_waits(2, {1})
        assert graph.detect(victim_chooser=min).victim == 1

    def test_set_waits_replaces_previous_edges(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {2})
        graph.set_waits(1, {3})
        assert graph.waits_on(1) == {3}

    def test_clear_waits_breaks_the_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {2})
        graph.set_waits(2, {1})
        graph.clear_waits(1)
        assert graph.find_cycle() is None

    def test_remove_transaction_clears_incoming_and_outgoing_edges(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {2})
        graph.set_waits(2, {1})
        graph.remove_transaction(2)
        assert graph.find_cycle() is None
        assert graph.waiting() == set()

    def test_self_wait_is_ignored(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {1})
        assert graph.waiting() == set()
        assert graph.find_cycle() is None

    def test_waiting_lists_blocked_transactions(self):
        graph = WaitsForGraph()
        graph.set_waits(1, {2, 3})
        assert graph.waiting() == {1}
        assert graph.waits_on(1) == {2, 3}
