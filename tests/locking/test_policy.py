"""Unit tests for the Table 2 locking policies (repro.locking.policy)."""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName
from repro.locking.modes import LockDuration, LockMode
from repro.locking.policy import POLICIES, policy_for


class TestTable2Policies:
    def test_every_locking_level_has_a_policy(self):
        for level in (IsolationLevelName.DEGREE_0,
                      IsolationLevelName.READ_UNCOMMITTED,
                      IsolationLevelName.READ_COMMITTED,
                      IsolationLevelName.CURSOR_STABILITY,
                      IsolationLevelName.REPEATABLE_READ,
                      IsolationLevelName.SERIALIZABLE):
            assert policy_for(level).level is level

    def test_non_locking_levels_have_no_policy(self):
        with pytest.raises(KeyError):
            policy_for(IsolationLevelName.SNAPSHOT_ISOLATION)

    def test_degree0_takes_only_short_write_locks(self):
        policy = policy_for(IsolationLevelName.DEGREE_0)
        assert policy.item_read is None
        assert policy.predicate_read is None
        assert policy.write.duration is LockDuration.SHORT

    def test_read_uncommitted_has_long_write_locks_but_no_read_locks(self):
        policy = policy_for(IsolationLevelName.READ_UNCOMMITTED)
        assert policy.item_read is None
        assert policy.write.duration is LockDuration.LONG

    def test_read_committed_uses_short_read_locks(self):
        policy = policy_for(IsolationLevelName.READ_COMMITTED)
        assert policy.item_read.duration is LockDuration.SHORT
        assert policy.predicate_read.duration is LockDuration.SHORT

    def test_cursor_stability_holds_the_current_of_cursor(self):
        policy = policy_for(IsolationLevelName.CURSOR_STABILITY)
        assert policy.cursor_read.duration is LockDuration.CURSOR
        assert policy.item_read.duration is LockDuration.SHORT

    def test_repeatable_read_long_item_but_short_predicate_locks(self):
        policy = policy_for(IsolationLevelName.REPEATABLE_READ)
        assert policy.item_read.duration is LockDuration.LONG
        assert policy.predicate_read.duration is LockDuration.SHORT

    def test_serializable_holds_everything_long(self):
        policy = policy_for(IsolationLevelName.SERIALIZABLE)
        assert policy.item_read.duration is LockDuration.LONG
        assert policy.predicate_read.duration is LockDuration.LONG
        assert policy.write.duration is LockDuration.LONG

    def test_every_level_above_degree0_holds_long_write_locks(self):
        for level, policy in POLICIES.items():
            if level is IsolationLevelName.DEGREE_0:
                continue
            assert policy.write.mode is LockMode.EXCLUSIVE
            assert policy.write.duration is LockDuration.LONG

    def test_all_read_rules_are_shared_mode(self):
        for policy in POLICIES.values():
            for rule in (policy.item_read, policy.predicate_read, policy.cursor_read):
                if rule is not None:
                    assert rule.mode is LockMode.SHARED

    def test_describe_renders_every_action(self):
        description = policy_for(IsolationLevelName.SERIALIZABLE).describe()
        assert set(description) == {"item read", "predicate read", "cursor read", "write"}
        assert description["write"] == "X long"
        none_description = policy_for(IsolationLevelName.DEGREE_0).describe()
        assert none_description["item read"] == "none required"
