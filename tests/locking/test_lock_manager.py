"""Unit tests for the lock manager (repro.locking.lock_manager)."""

from __future__ import annotations

from repro.locking.lock_manager import LockManager
from repro.locking.modes import (
    ItemTarget,
    LockDuration,
    LockMode,
    PredicateTarget,
    RowTarget,
)
from repro.storage.predicates import attribute_equals
from repro.storage.rows import Row

X = ItemTarget("x")
Y = ItemTarget("y")
ACTIVE = attribute_equals("Active", "employees", "active", True)


class TestGrantAndConflict:
    def test_first_request_is_granted(self):
        manager = LockManager()
        assert manager.request(1, X, LockMode.SHARED, LockDuration.LONG).granted

    def test_shared_locks_are_compatible(self):
        manager = LockManager()
        manager.request(1, X, LockMode.SHARED, LockDuration.LONG)
        assert manager.request(2, X, LockMode.SHARED, LockDuration.LONG).granted

    def test_exclusive_blocks_other_readers_and_writers(self):
        manager = LockManager()
        manager.request(1, X, LockMode.EXCLUSIVE, LockDuration.LONG)
        read = manager.request(2, X, LockMode.SHARED, LockDuration.SHORT)
        write = manager.request(2, X, LockMode.EXCLUSIVE, LockDuration.LONG)
        assert not read.granted and read.blockers == {1}
        assert not write.granted and write.blockers == {1}
        assert manager.blocked_requests == 2

    def test_conflicts_only_on_overlapping_targets(self):
        manager = LockManager()
        manager.request(1, X, LockMode.EXCLUSIVE, LockDuration.LONG)
        assert manager.request(2, Y, LockMode.EXCLUSIVE, LockDuration.LONG).granted

    def test_own_lock_never_blocks(self):
        manager = LockManager()
        manager.request(1, X, LockMode.EXCLUSIVE, LockDuration.LONG)
        assert manager.request(1, X, LockMode.SHARED, LockDuration.SHORT).granted
        assert len(manager.locks_of(1)) == 1  # no duplicates


class TestUpgrades:
    def test_shared_to_exclusive_upgrade_when_alone(self):
        manager = LockManager()
        manager.request(1, X, LockMode.SHARED, LockDuration.LONG)
        assert manager.request(1, X, LockMode.EXCLUSIVE, LockDuration.LONG).granted
        assert manager.held_by(1, X, LockMode.EXCLUSIVE)

    def test_upgrade_blocked_by_other_reader(self):
        manager = LockManager()
        manager.request(1, X, LockMode.SHARED, LockDuration.LONG)
        manager.request(2, X, LockMode.SHARED, LockDuration.LONG)
        result = manager.request(1, X, LockMode.EXCLUSIVE, LockDuration.LONG)
        assert not result.granted and result.blockers == {2}

    def test_duration_is_extended_not_shortened(self):
        manager = LockManager()
        manager.request(1, X, LockMode.SHARED, LockDuration.LONG)
        manager.request(1, X, LockMode.SHARED, LockDuration.SHORT)
        manager.release_short(1)
        assert manager.held_by(1, X)  # the long lock survived


class TestRelease:
    def test_release_all_frees_blockers(self):
        manager = LockManager()
        manager.request(1, X, LockMode.EXCLUSIVE, LockDuration.LONG)
        manager.release_all(1)
        assert manager.request(2, X, LockMode.EXCLUSIVE, LockDuration.LONG).granted

    def test_release_short_only_releases_short_locks(self):
        manager = LockManager()
        manager.request(1, X, LockMode.SHARED, LockDuration.SHORT)
        manager.request(1, Y, LockMode.EXCLUSIVE, LockDuration.LONG)
        manager.release_short(1)
        assert not manager.held_by(1, X)
        assert manager.held_by(1, Y)

    def test_release_specific_target(self):
        manager = LockManager()
        manager.request(1, X, LockMode.SHARED, LockDuration.LONG)
        manager.release(1, X)
        assert not manager.held_by(1, X)

    def test_release_cursor_only_affects_that_cursor(self):
        manager = LockManager()
        manager.request(1, X, LockMode.SHARED, LockDuration.CURSOR, cursor="c1")
        manager.request(1, Y, LockMode.SHARED, LockDuration.CURSOR, cursor="c2")
        manager.release_cursor(1, "c1")
        assert not manager.held_by(1, X)
        assert manager.held_by(1, Y)

    def test_cursor_lock_upgraded_to_long_survives_cursor_release(self):
        manager = LockManager()
        manager.request(1, X, LockMode.SHARED, LockDuration.CURSOR, cursor="c1")
        manager.request(1, X, LockMode.EXCLUSIVE, LockDuration.LONG)
        manager.release_cursor(1, "c1")
        assert manager.held_by(1, X, LockMode.EXCLUSIVE)


class TestPredicateLocks:
    def test_predicate_lock_blocks_covered_row_write(self):
        manager = LockManager()
        manager.request(1, PredicateTarget(ACTIVE), LockMode.SHARED, LockDuration.LONG)
        insert = RowTarget("employees", "e9", before=None,
                           after=Row("e9", {"active": True}))
        result = manager.request(2, insert, LockMode.EXCLUSIVE, LockDuration.LONG)
        assert not result.granted and result.blockers == {1}

    def test_predicate_lock_allows_uncovered_row_write(self):
        manager = LockManager()
        manager.request(1, PredicateTarget(ACTIVE), LockMode.SHARED, LockDuration.LONG)
        insert = RowTarget("employees", "e9", before=None,
                           after=Row("e9", {"active": False}))
        assert manager.request(2, insert, LockMode.EXCLUSIVE, LockDuration.LONG).granted

    def test_row_write_lock_blocks_later_predicate_read(self):
        manager = LockManager()
        update = RowTarget("employees", "e1",
                           before=Row("e1", {"active": True}),
                           after=Row("e1", {"active": False}))
        manager.request(1, update, LockMode.EXCLUSIVE, LockDuration.LONG)
        result = manager.request(2, PredicateTarget(ACTIVE), LockMode.SHARED,
                                 LockDuration.LONG)
        assert not result.granted and result.blockers == {1}

    def test_holders_reports_conflicting_transactions(self):
        manager = LockManager()
        manager.request(1, X, LockMode.EXCLUSIVE, LockDuration.LONG)
        manager.request(2, Y, LockMode.EXCLUSIVE, LockDuration.LONG)
        assert manager.holders(X, LockMode.SHARED) == {1}
        assert manager.holders(Y, LockMode.EXCLUSIVE) == {2}
        assert len(manager.all_locks()) == 2
