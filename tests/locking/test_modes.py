"""Unit tests for lock modes and lock targets (repro.locking.modes)."""

from __future__ import annotations

from repro.locking.modes import (
    ItemTarget,
    LockDuration,
    LockMode,
    PredicateTarget,
    RowTarget,
    modes_conflict,
)
from repro.storage.predicates import attribute_equals
from repro.storage.rows import Row

ACTIVE = attribute_equals("Active", "employees", "active", True)


class TestModeConflicts:
    def test_shared_shared_compatible(self):
        assert not modes_conflict(LockMode.SHARED, LockMode.SHARED)

    def test_any_exclusive_conflicts(self):
        assert modes_conflict(LockMode.SHARED, LockMode.EXCLUSIVE)
        assert modes_conflict(LockMode.EXCLUSIVE, LockMode.SHARED)
        assert modes_conflict(LockMode.EXCLUSIVE, LockMode.EXCLUSIVE)


class TestItemTargets:
    def test_same_item_overlaps(self):
        assert ItemTarget("x").overlaps(ItemTarget("x"))
        assert not ItemTarget("x").overlaps(ItemTarget("y"))

    def test_item_never_overlaps_rows_or_predicates(self):
        assert not ItemTarget("x").overlaps(RowTarget("employees", "e1"))
        assert not ItemTarget("x").overlaps(PredicateTarget(ACTIVE))

    def test_keys_identify_targets(self):
        assert ItemTarget("x").key() == ItemTarget("x").key()
        assert ItemTarget("x").key() != ItemTarget("y").key()


class TestRowTargets:
    def test_same_row_overlaps(self):
        assert RowTarget("employees", "e1").overlaps(RowTarget("employees", "e1"))
        assert not RowTarget("employees", "e1").overlaps(RowTarget("employees", "e2"))
        assert not RowTarget("employees", "e1").overlaps(RowTarget("tasks", "e1"))

    def test_row_vs_predicate_uses_coverage(self):
        covered = RowTarget("employees", "e9", before=None,
                            after=Row("e9", {"active": True}))
        uncovered = RowTarget("employees", "e9", before=None,
                              after=Row("e9", {"active": False}))
        assert covered.overlaps(PredicateTarget(ACTIVE))
        assert not uncovered.overlaps(PredicateTarget(ACTIVE))

    def test_row_without_images_is_conservative(self):
        bare = RowTarget("employees", "e9")
        assert bare.overlaps(PredicateTarget(ACTIVE))
        other_table = RowTarget("tasks", "t1")
        assert not other_table.overlaps(PredicateTarget(ACTIVE))


class TestPredicateTargets:
    def test_predicate_vs_predicate_same_table(self):
        other = attribute_equals("Inactive", "employees", "active", False)
        assert not PredicateTarget(ACTIVE).overlaps(PredicateTarget(other))
        again = attribute_equals("Active2", "employees", "active", True)
        assert PredicateTarget(ACTIVE).overlaps(PredicateTarget(again))

    def test_predicate_covers_row_leaving_extent(self):
        leaving = RowTarget("employees", "e1",
                            before=Row("e1", {"active": True}),
                            after=Row("e1", {"active": False}))
        assert PredicateTarget(ACTIVE).overlaps(leaving)

    def test_durations_are_distinct(self):
        assert LockDuration.SHORT is not LockDuration.LONG
        assert {LockDuration.SHORT, LockDuration.LONG, LockDuration.CURSOR}
