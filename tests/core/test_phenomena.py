"""Unit tests for the phenomenon and anomaly detectors (repro.core.phenomena).

Most of the interesting cases come straight from the paper: H1 violates P1 but
none of the strict anomalies; H2 violates P2 (and shows read skew) without any
dirty read; H3 is a phantom that A3 misses; H4 is the lost update; H5 the
write skew.
"""

from __future__ import annotations

import pytest

from repro.core.history import parse_history
from repro.core.phenomena import (
    ALL_PHENOMENA,
    A1_DIRTY_READ_STRICT,
    A2_FUZZY_READ_STRICT,
    A3_PHANTOM_STRICT,
    A5A_READ_SKEW,
    A5B_WRITE_SKEW,
    P0_DIRTY_WRITE,
    P1_DIRTY_READ,
    P2_FUZZY_READ,
    P3_PHANTOM,
    P4_LOST_UPDATE,
    P4C_CURSOR_LOST_UPDATE,
    by_code,
    detect_all,
)

H1 = parse_history("r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1")
H2 = parse_history("r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1")
H3 = parse_history("r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1")
H4 = parse_history("r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1")
H5 = parse_history("r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2")


class TestDirtyWriteP0:
    def test_overlapping_writes_are_detected(self):
        history = parse_history("w1[x] w2[x] c2 c1")
        occurrences = P0_DIRTY_WRITE.find(history)
        assert occurrences
        assert occurrences[0].transactions == (1, 2)

    def test_write_after_commit_is_not_dirty(self):
        history = parse_history("w1[x] c1 w2[x] c2")
        assert not P0_DIRTY_WRITE.occurs_in(history)

    def test_paper_constraint_example(self):
        history = parse_history("w1[x=1] w2[x=2] w2[y=2] c2 w1[y=1] c1")
        assert P0_DIRTY_WRITE.occurs_in(history)

    def test_same_transaction_rewrites_are_fine(self):
        history = parse_history("w1[x] w1[x] c1")
        assert not P0_DIRTY_WRITE.occurs_in(history)

    def test_open_transaction_still_counts(self):
        # T1 has not terminated yet; the dangerous pattern already happened.
        history = parse_history("w1[x] w2[x] c2")
        assert P0_DIRTY_WRITE.occurs_in(history)


class TestDirtyReadP1A1:
    def test_h1_violates_p1_but_not_a1(self):
        assert P1_DIRTY_READ.occurs_in(H1)
        assert not A1_DIRTY_READ_STRICT.occurs_in(H1)

    def test_a1_requires_abort_and_commit(self):
        aborting = parse_history("w1[x] r2[x] c2 a1")
        assert A1_DIRTY_READ_STRICT.occurs_in(aborting)
        assert P1_DIRTY_READ.occurs_in(aborting)

    def test_read_after_commit_is_clean(self):
        history = parse_history("w1[x] c1 r2[x] c2")
        assert not P1_DIRTY_READ.occurs_in(history)
        assert not A1_DIRTY_READ_STRICT.occurs_in(history)

    def test_a1_not_triggered_when_writer_commits(self):
        history = parse_history("w1[x] r2[x] c2 c1")
        assert not A1_DIRTY_READ_STRICT.occurs_in(history)
        assert P1_DIRTY_READ.occurs_in(history)

    def test_a1_not_triggered_when_reader_aborts(self):
        history = parse_history("w1[x] r2[x] a2 a1")
        assert not A1_DIRTY_READ_STRICT.occurs_in(history)


class TestFuzzyReadP2A2:
    def test_h2_violates_p2_but_not_a2_or_p1(self):
        assert P2_FUZZY_READ.occurs_in(H2)
        assert not A2_FUZZY_READ_STRICT.occurs_in(H2)
        assert not P1_DIRTY_READ.occurs_in(H2)

    def test_a2_requires_a_reread(self):
        rereading = parse_history("r1[x] w2[x] c2 r1[x] c1")
        assert A2_FUZZY_READ_STRICT.occurs_in(rereading)
        assert P2_FUZZY_READ.occurs_in(rereading)

    def test_write_after_reader_commit_is_fine(self):
        history = parse_history("r1[x] c1 w2[x] c2")
        assert not P2_FUZZY_READ.occurs_in(history)

    def test_a2_requires_writer_commit_before_reread(self):
        history = parse_history("r1[x] w2[x] r1[x] c1 c2")
        assert not A2_FUZZY_READ_STRICT.occurs_in(history)
        assert P2_FUZZY_READ.occurs_in(history)


class TestPhantomP3A3:
    def test_h3_violates_p3_but_not_a3(self):
        assert P3_PHANTOM.occurs_in(H3)
        assert not A3_PHANTOM_STRICT.occurs_in(H3)

    def test_a3_requires_predicate_reread(self):
        history = parse_history("r1[P] w2[insert y to P] c2 r1[P] c1")
        assert A3_PHANTOM_STRICT.occurs_in(history)
        assert P3_PHANTOM.occurs_in(history)

    def test_p3_covers_updates_and_deletes_not_just_inserts(self):
        update = parse_history("r1[P] w2[y in P] c2 c1")
        delete = parse_history("r1[P] w2[delete y from P] c2 c1")
        assert P3_PHANTOM.occurs_in(update)
        assert P3_PHANTOM.occurs_in(delete)

    def test_write_to_other_predicate_is_not_a_phantom(self):
        history = parse_history("r1[P] w2[insert y to Q] c2 c1")
        assert not P3_PHANTOM.occurs_in(history)

    def test_predicate_write_after_reader_commit_is_fine(self):
        history = parse_history("r1[P] c1 w2[insert y to P] c2")
        assert not P3_PHANTOM.occurs_in(history)


class TestLostUpdateP4:
    def test_h4_is_a_lost_update(self):
        assert P4_LOST_UPDATE.occurs_in(H4)

    def test_requires_reader_to_write_and_commit(self):
        no_own_write = parse_history("r1[x] w2[x] c2 c1")
        assert not P4_LOST_UPDATE.occurs_in(no_own_write)
        aborting = parse_history("r1[x] w2[x] c2 w1[x] a1")
        assert not P4_LOST_UPDATE.occurs_in(aborting)

    def test_h4_avoids_p0_and_p1(self):
        assert not P0_DIRTY_WRITE.occurs_in(H4)
        assert not P1_DIRTY_READ.occurs_in(H4)


class TestCursorLostUpdateP4C:
    def test_cursor_pattern_is_detected(self):
        history = parse_history("rc1[x] w2[x] wc1[x] c1 c2")
        assert P4C_CURSOR_LOST_UPDATE.occurs_in(history)

    def test_plain_reads_do_not_trigger_p4c(self):
        assert not P4C_CURSOR_LOST_UPDATE.occurs_in(H4)

    def test_cursor_write_before_other_write_is_fine(self):
        history = parse_history("rc1[x] wc1[x] c1 w2[x] c2")
        assert not P4C_CURSOR_LOST_UPDATE.occurs_in(history)


class TestReadSkewA5A:
    def test_h2_exhibits_read_skew(self):
        assert A5A_READ_SKEW.occurs_in(H2)

    def test_classic_read_skew_pattern(self):
        history = parse_history("r1[x] w2[x] w2[y] c2 r1[y] c1")
        assert A5A_READ_SKEW.occurs_in(history)

    def test_single_item_fuzzy_read_is_not_read_skew(self):
        history = parse_history("r1[x] w2[x] c2 r1[x] c1")
        assert not A5A_READ_SKEW.occurs_in(history)

    def test_read_before_commit_not_read_skew(self):
        history = parse_history("r1[x] w2[x] w2[y] r1[y] c2 c1")
        assert not A5A_READ_SKEW.occurs_in(history)


class TestWriteSkewA5B:
    def test_h5_exhibits_write_skew(self):
        assert A5B_WRITE_SKEW.occurs_in(H5)

    def test_h5_avoids_lost_update_and_read_skew(self):
        assert not P4_LOST_UPDATE.occurs_in(H5)
        assert not A5A_READ_SKEW.occurs_in(H5)
        assert not P0_DIRTY_WRITE.occurs_in(H5)
        assert not P1_DIRTY_READ.occurs_in(H5)

    def test_requires_both_commits(self):
        history = parse_history("r1[x] r2[y] w1[y] w2[x] c1 a2")
        assert not A5B_WRITE_SKEW.occurs_in(history)

    def test_disjoint_items_are_not_write_skew(self):
        history = parse_history("r1[x] r2[y] w1[x] w2[y] c1 c2")
        assert not A5B_WRITE_SKEW.occurs_in(history)


class TestRegistry:
    def test_every_paper_code_is_registered(self):
        for code in ("P0", "P1", "P2", "P3", "P4", "P4C", "A1", "A2", "A3", "A5A", "A5B"):
            assert by_code(code).code == code

    def test_lookup_is_case_insensitive(self):
        assert by_code("a5b") is A5B_WRITE_SKEW

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            by_code("P9")

    def test_detect_all_runs_every_detector(self):
        results = detect_all(H1)
        assert set(results) == set(ALL_PHENOMENA)
        assert results["P1"] and not results["A1"]

    def test_detect_all_with_selected_codes(self):
        results = detect_all(H4, codes=["P4", "P0"])
        assert set(results) == {"P4", "P0"}
        assert results["P4"] and not results["P0"]
