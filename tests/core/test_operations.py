"""Unit tests for the operation model (repro.core.operations)."""

from __future__ import annotations

import pytest

from repro.core.operations import (
    Operation,
    OperationKind,
    WriteAction,
    abort,
    commit,
    cursor_read,
    cursor_write,
    predicate_read,
    predicate_write,
    read,
    write,
)


class TestOperationKind:
    def test_read_kinds_are_reads(self):
        assert OperationKind.READ.is_read
        assert OperationKind.CURSOR_READ.is_read
        assert OperationKind.PREDICATE_READ.is_read
        assert not OperationKind.WRITE.is_read

    def test_write_kinds_are_writes(self):
        assert OperationKind.WRITE.is_write
        assert OperationKind.CURSOR_WRITE.is_write
        assert OperationKind.PREDICATE_WRITE.is_write
        assert not OperationKind.READ.is_write

    def test_terminal_kinds(self):
        assert OperationKind.COMMIT.is_terminal
        assert OperationKind.ABORT.is_terminal
        assert not OperationKind.READ.is_terminal

    def test_data_access_excludes_terminals(self):
        assert OperationKind.READ.is_data_access
        assert OperationKind.WRITE.is_data_access
        assert not OperationKind.COMMIT.is_data_access

    def test_predicate_and_cursor_flags(self):
        assert OperationKind.PREDICATE_READ.uses_predicate
        assert not OperationKind.READ.uses_predicate
        assert OperationKind.CURSOR_WRITE.uses_cursor
        assert not OperationKind.WRITE.uses_cursor


class TestOperationConstruction:
    def test_read_requires_item(self):
        with pytest.raises(ValueError):
            Operation(OperationKind.READ, 1)

    def test_commit_rejects_item(self):
        with pytest.raises(ValueError):
            Operation(OperationKind.COMMIT, 1, item="x")

    def test_predicate_read_requires_predicate(self):
        with pytest.raises(ValueError):
            Operation(OperationKind.PREDICATE_READ, 1)

    def test_constructors_build_expected_kinds(self):
        assert read(1, "x").kind is OperationKind.READ
        assert write(1, "x").kind is OperationKind.WRITE
        assert cursor_read(1, "x").kind is OperationKind.CURSOR_READ
        assert cursor_write(1, "x").kind is OperationKind.CURSOR_WRITE
        assert predicate_read(1, "P").kind is OperationKind.PREDICATE_READ
        assert predicate_write(1, "y", "P").kind is OperationKind.PREDICATE_WRITE
        assert commit(1).kind is OperationKind.COMMIT
        assert abort(1).kind is OperationKind.ABORT

    def test_operations_are_frozen(self):
        op = read(1, "x")
        with pytest.raises(AttributeError):
            op.item = "y"  # type: ignore[misc]


class TestConflicts:
    def test_same_transaction_never_conflicts(self):
        assert not write(1, "x").conflicts_with(read(1, "x"))

    def test_read_read_never_conflicts(self):
        assert not read(1, "x").conflicts_with(read(2, "x"))

    def test_write_read_same_item_conflicts(self):
        assert write(1, "x").conflicts_with(read(2, "x"))
        assert read(1, "x").conflicts_with(write(2, "x"))

    def test_write_write_same_item_conflicts(self):
        assert write(1, "x").conflicts_with(write(2, "x"))

    def test_different_items_do_not_conflict(self):
        assert not write(1, "x").conflicts_with(write(2, "y"))

    def test_terminal_operations_never_conflict(self):
        assert not commit(1).conflicts_with(write(2, "x"))
        assert not write(1, "x").conflicts_with(abort(2))

    def test_predicate_read_conflicts_with_predicate_write(self):
        pred_read = predicate_read(1, "P")
        pred_write = predicate_write(2, "y", "P", WriteAction.INSERT)
        assert pred_read.conflicts_with(pred_write)
        assert pred_write.conflicts_with(pred_read)

    def test_predicate_read_does_not_conflict_with_other_predicate(self):
        assert not predicate_read(1, "P").conflicts_with(predicate_write(2, "y", "Q"))

    def test_cursor_ops_conflict_like_item_ops(self):
        assert cursor_read(1, "x").conflicts_with(write(2, "x"))
        assert cursor_write(1, "x").conflicts_with(cursor_read(2, "x"))


class TestShorthandRendering:
    def test_plain_read_write(self):
        assert read(1, "x").to_shorthand() == "r1[x]"
        assert write(2, "y").to_shorthand() == "w2[y]"

    def test_valued_operations(self):
        assert read(1, "x", value=50).to_shorthand() == "r1[x=50]"
        assert write(1, "x", value=10).to_shorthand() == "w1[x=10]"

    def test_versioned_operations(self):
        assert read(1, "x", value=50, version=0).to_shorthand() == "r1[x0=50]"
        assert write(1, "x", version=1).to_shorthand() == "w1[x1]"

    def test_cursor_operations(self):
        assert cursor_read(1, "x").to_shorthand() == "rc1[x]"
        assert cursor_write(1, "x").to_shorthand() == "wc1[x]"

    def test_predicate_operations(self):
        assert predicate_read(1, "P").to_shorthand() == "r1[P]"
        insert = predicate_write(2, "y", "P", WriteAction.INSERT)
        assert insert.to_shorthand() == "w2[insert y to P]"
        delete = predicate_write(2, "y", "P", WriteAction.DELETE)
        assert delete.to_shorthand() == "w2[delete y from P]"
        update = predicate_write(2, "y", "P", WriteAction.UPDATE)
        assert update.to_shorthand() == "w2[y in P]"

    def test_terminals(self):
        assert commit(3).to_shorthand() == "c3"
        assert abort(4).to_shorthand() == "a4"
