"""Unit tests for the phenomenon-based isolation levels (repro.core.isolation)."""

from __future__ import annotations

import pytest

from repro.core.history import parse_history
from repro.core.isolation import (
    ANSI_BROAD_LEVELS,
    ANSI_STRICT_LEVELS,
    CORRECTED_LEVELS,
    DEGREE_0,
    IsolationLevelName,
    Possibility,
    TABLE_1,
    TABLE_3,
    TRUE_SERIALIZABLE,
    level_by_name,
)

H1 = parse_history("r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1")
H2 = parse_history("r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1")
H3 = parse_history("r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1")
DIRTY_WRITE = parse_history("w1[x=1] w2[x=2] w2[y=2] c2 w1[y=1] c1")


class TestStrictAnsiLevels:
    """The paper's Section 3 argument: the strict levels are too weak."""

    def test_anomaly_serializable_admits_h1_h2_h3(self):
        level = ANSI_STRICT_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]
        assert level.permits(H1)
        assert level.permits(H2)
        assert level.permits(H3)

    def test_but_none_of_them_is_serializable(self):
        for history in (H1, H2, H3):
            assert not TRUE_SERIALIZABLE.permits(history)

    def test_strict_read_committed_rejects_actual_a1(self):
        level = ANSI_STRICT_LEVELS[IsolationLevelName.ANSI_READ_COMMITTED]
        assert not level.permits(parse_history("w1[x] r2[x] c2 a1"))

    def test_no_strict_level_rejects_dirty_writes(self):
        for level in ANSI_STRICT_LEVELS.values():
            assert level.permits(DIRTY_WRITE)


class TestBroadAnsiLevels:
    def test_broad_read_committed_rejects_h1(self):
        level = ANSI_BROAD_LEVELS[IsolationLevelName.ANSI_READ_COMMITTED]
        assert not level.permits(H1)

    def test_broad_repeatable_read_rejects_h2(self):
        level = ANSI_BROAD_LEVELS[IsolationLevelName.ANSI_REPEATABLE_READ]
        assert not level.permits(H2)

    def test_broad_anomaly_serializable_rejects_h3(self):
        level = ANSI_BROAD_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]
        assert not level.permits(H3)

    def test_broad_levels_still_miss_dirty_writes(self):
        level = ANSI_BROAD_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]
        assert level.permits(DIRTY_WRITE)


class TestCorrectedLevels:
    def test_every_corrected_level_forbids_p0(self):
        for level in CORRECTED_LEVELS.values():
            assert level.forbids("P0")
            assert not level.permits(DIRTY_WRITE)

    def test_degree_0_allows_dirty_writes(self):
        assert DEGREE_0.permits(DIRTY_WRITE)

    def test_forbidden_sets_are_nested(self):
        ru = CORRECTED_LEVELS[IsolationLevelName.READ_UNCOMMITTED]
        rc = CORRECTED_LEVELS[IsolationLevelName.READ_COMMITTED]
        rr = CORRECTED_LEVELS[IsolationLevelName.REPEATABLE_READ]
        ser = CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE]
        assert set(ru.forbidden) < set(rc.forbidden) < set(rr.forbidden) < set(ser.forbidden)

    def test_violations_name_the_offending_phenomena(self):
        ser = CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE]
        assert ser.violations(H1) == ["P1"]
        assert ser.violations(H3) == ["P3"]

    def test_serializable_level_rejects_all_paper_counterexamples(self):
        ser = CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE]
        for history in (H1, H2, H3, DIRTY_WRITE):
            assert not ser.permits(history)

    def test_serializable_level_permits_serial_histories(self):
        serial = parse_history("r1[x] w1[y] c1 r2[y] w2[x] c2")
        assert CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE].permits(serial)


class TestDeclaredTables:
    def test_table1_shape(self):
        assert set(TABLE_1) == {
            IsolationLevelName.ANSI_READ_UNCOMMITTED,
            IsolationLevelName.ANSI_READ_COMMITTED,
            IsolationLevelName.ANSI_REPEATABLE_READ,
            IsolationLevelName.ANOMALY_SERIALIZABLE,
        }
        for row in TABLE_1.values():
            assert set(row) == {"P1", "P2", "P3"}

    def test_table3_adds_p0_everywhere(self):
        for row in TABLE_3.values():
            assert row["P0"] is Possibility.NOT_POSSIBLE

    def test_table_cells_match_forbidden_sets(self):
        for name, row in TABLE_3.items():
            level = CORRECTED_LEVELS[name]
            for code, cell in row.items():
                assert level.forbids(code) == (cell is Possibility.NOT_POSSIBLE)


class TestLevelLookup:
    def test_lookup_by_interpretation(self):
        strict = level_by_name(IsolationLevelName.ANSI_READ_COMMITTED, "strict")
        broad = level_by_name(IsolationLevelName.ANSI_READ_COMMITTED, "broad")
        corrected = level_by_name(IsolationLevelName.READ_COMMITTED, "corrected")
        assert strict.forbidden == ("A1",)
        assert broad.forbidden == ("P1",)
        assert corrected.forbidden == ("P0", "P1")

    def test_degree0_lookup(self):
        assert level_by_name(IsolationLevelName.DEGREE_0) is DEGREE_0

    def test_unknown_interpretation_raises(self):
        with pytest.raises(ValueError):
            level_by_name(IsolationLevelName.READ_COMMITTED, "bogus")

    def test_missing_level_raises(self):
        with pytest.raises(KeyError):
            level_by_name(IsolationLevelName.SNAPSHOT_ISOLATION, "corrected")
