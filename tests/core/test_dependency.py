"""Unit tests for dependency graphs and serializability (repro.core.dependency)."""

from __future__ import annotations

import pytest

from repro.core.dependency import (
    build_dependency_graph,
    equivalent_serial_orders,
    histories_equivalent,
    is_serializable,
)
from repro.core.history import parse_history


class TestDependencyGraph:
    def test_serial_history_has_acyclic_graph(self):
        history = parse_history("r1[x] w1[x] c1 r2[x] w2[x] c2")
        graph = build_dependency_graph(history)
        assert graph.is_acyclic()
        assert graph.topological_order() == [1, 2]

    def test_edges_are_labelled_by_kind(self):
        history = parse_history("w1[x] c1 r2[x] w2[x] c2")
        graph = build_dependency_graph(history)
        kinds = {edge.kind for edge in graph.edges_between(1, 2)}
        assert kinds == {"wr", "ww"}

    def test_rw_edge_detected(self):
        history = parse_history("r1[x] c1 w2[x] c2")
        graph = build_dependency_graph(history)
        assert {edge.kind for edge in graph.edges_between(1, 2)} == {"rw"}

    def test_cycle_is_reported(self):
        history = parse_history("r1[x] r2[y] w2[x] w1[y] c1 c2")
        graph = build_dependency_graph(history)
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2}
        assert graph.topological_order() is None

    def test_only_committed_transactions_are_nodes(self):
        history = parse_history("w1[x] r2[x] a1 c2")
        graph = build_dependency_graph(history)
        assert graph.nodes == [2]
        assert not graph.edges

    def test_uncommitted_included_when_requested(self):
        history = parse_history("w1[x] r2[x] c2")
        graph = build_dependency_graph(history, committed_only=False)
        assert set(graph.nodes) == {1, 2}
        assert graph.edges_between(1, 2)

    def test_all_topological_orders(self):
        history = parse_history("r1[x] c1 r2[y] c2")
        graph = build_dependency_graph(history)
        orders = graph.all_topological_orders()
        assert sorted(orders) == [[1, 2], [2, 1]]


class TestSerializability:
    @pytest.mark.parametrize("name, text, expected", [
        ("H1", "r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1", False),
        ("H2", "r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1", False),
        ("H4", "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1", False),
        ("H5", "r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2", False),
        ("serial", "r1[x] w1[y] c1 r2[y] w2[x] c2", True),
        ("read-only overlap", "r1[x] r2[x] c1 c2", True),
    ])
    def test_paper_and_simple_histories(self, name, text, expected):
        assert is_serializable(parse_history(text, name=name)) is expected

    def test_phantom_history_h3_is_not_serializable(self):
        history = parse_history("r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1")
        assert not is_serializable(history)

    def test_equivalent_serial_orders_for_serializable_history(self):
        history = parse_history("r1[x] r2[x] w1[y] c1 c2")
        orders = equivalent_serial_orders(history)
        assert [1, 2] in orders or [2, 1] in orders
        assert orders  # at least one witness order exists


class TestEquivalence:
    def test_history_equivalent_to_itself(self):
        history = parse_history("r1[x] w2[x] c1 c2")
        assert histories_equivalent(history, history)

    def test_reordering_non_conflicting_ops_preserves_equivalence(self):
        first = parse_history("r1[x] w2[y] c1 c2")
        second = parse_history("w2[y] r1[x] c2 c1")
        assert histories_equivalent(first, second)

    def test_reordering_conflicting_ops_breaks_equivalence(self):
        first = parse_history("w1[x] w2[x] c1 c2")
        second = parse_history("w2[x] w1[x] c2 c1")
        assert not histories_equivalent(first, second)

    def test_different_committed_sets_are_not_equivalent(self):
        first = parse_history("w1[x] c1 w2[y] c2")
        second = parse_history("w1[x] c1 w2[y] a2")
        assert not histories_equivalent(first, second)

    def test_paper_mapping_h1si_sv_is_equivalent_to_serial_t2_t1(self):
        mapped = parse_history(
            "r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1")
        serial = parse_history(
            "r2[x=50] r2[y=50] c2 r1[x=50] r1[y=50] w1[x=10] w1[y=90] c1")
        assert histories_equivalent(mapped, serial)
