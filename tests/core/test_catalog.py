"""Tests that the paper's catalogued histories have exactly the properties the
paper claims for them (serializability, exhibited and avoided phenomena)."""

from __future__ import annotations

import pytest

from repro.core.catalog import CATALOG, by_name
from repro.core.dependency import is_serializable
from repro.core.mv_analysis import mv_is_serializable
from repro.core.phenomena import by_code


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_serializability_matches_paper(name):
    entry = CATALOG[name]
    history = entry.history
    if entry.multiversion:
        observed = mv_is_serializable(history)
    else:
        observed = is_serializable(history)
    assert observed == entry.serializable, (
        f"{name}: paper says serializable={entry.serializable}, observed {observed}"
    )


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_exhibited_phenomena_are_detected(name):
    entry = CATALOG[name]
    history = entry.history
    for code in entry.exhibits:
        assert by_code(code).occurs_in(history), f"{name} should exhibit {code}"


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_avoided_phenomena_are_absent(name):
    entry = CATALOG[name]
    history = entry.history
    for code in entry.avoids:
        assert not by_code(code).occurs_in(history), f"{name} should avoid {code}"


def test_catalog_contains_all_paper_histories():
    assert {"H1", "H2", "H3", "H4", "H5", "H1.SI", "H1.SI.SV"} <= set(CATALOG)


def test_lookup_by_name():
    assert by_name("H1").section == "3"
    with pytest.raises(KeyError):
        by_name("H99")


def test_histories_parse_to_nonempty_sequences():
    for entry in CATALOG.values():
        assert len(entry.history) >= 3 or entry.name == "P0-recovery"


def test_h1_and_h1si_share_the_same_action_skeleton():
    """H1.SI is H1 'under Snapshot Isolation': same operations per transaction,
    in the same order, differing only in which versions reads name."""
    h1 = by_name("H1").history
    h1_si = by_name("H1.SI").history
    skeleton = [(op.kind, op.txn, op.item) for op in h1]
    si_skeleton = [(op.kind, op.txn, op.item) for op in h1_si]
    assert skeleton == si_skeleton
