"""Unit tests for multiversion history analysis (repro.core.mv_analysis)."""

from __future__ import annotations


from repro.core.catalog import H1_SI, H1_SI_SV
from repro.core.dependency import is_serializable
from repro.core.history import parse_history
from repro.core.mv_analysis import (
    final_writers,
    mv_is_serializable,
    mv_serialization_graph,
    mv_to_sv,
    reads_from,
    same_dataflow,
)


class TestReadsFrom:
    def test_single_version_reads_from_latest_preceding_write(self):
        history = parse_history("w1[x] c1 r2[x] c2")
        entries = reads_from(history)
        assert len(entries) == 1
        assert entries[0].reader == 2
        assert entries[0].writer == 1

    def test_single_version_read_of_initial_state(self):
        history = parse_history("r1[x] c1")
        assert reads_from(history)[0].writer is None

    def test_multiversion_reads_follow_version_subscripts(self):
        history = parse_history("w1[x1=10] r2[x0=50] c2 c1", multiversion=True)
        entries = reads_from(history)
        assert entries[0].reader == 2
        # x0 was written by nobody in this history: it is the initial state.
        assert entries[0].writer is None

    def test_multiversion_read_of_installed_version(self):
        history = parse_history("w1[x1=10] c1 r2[x1=10] c2", multiversion=True)
        assert reads_from(history)[0].writer == 1


class TestMvSerializationGraph:
    def test_h1si_graph_is_acyclic(self):
        assert mv_is_serializable(H1_SI.history)

    def test_h1_single_version_is_cyclic_but_h1si_is_not(self):
        """The paper's point: the same action sequence is non-serializable as
        a single-version history but serializable under SI's version choices."""
        h1 = parse_history(
            "r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1")
        assert not is_serializable(h1)
        assert mv_is_serializable(H1_SI.history)

    def test_rw_edge_from_reading_an_overwritten_version(self):
        history = parse_history("r1[x0] w2[x1] c2 c1", multiversion=True)
        graph = mv_serialization_graph(history)
        assert graph.edge_set() == {(1, 2)}

    def test_ww_edges_follow_version_order(self):
        history = parse_history("w1[x1] c1 w2[x2] c2", multiversion=True)
        graph = mv_serialization_graph(history)
        kinds = {edge.kind for edge in graph.edges_between(1, 2)}
        assert "ww" in kinds

    def test_write_skew_remains_non_serializable_even_as_an_mv_history(self):
        """H5 under SI's version choices: each transaction reads the initial
        versions and writes a new version of a different item.  The MVSG is
        cyclic — SI admits the history even though it is not serializable,
        which is exactly the paper's point about write skew (A5B)."""
        h5_mv = parse_history(
            "r1[x0] r1[y0] r2[x0] r2[y0] w1[y1] w2[x1] c1 c2", multiversion=True)
        assert not mv_is_serializable(h5_mv)
        graph = mv_serialization_graph(h5_mv)
        # Both rw edges exist: T1 read x0 overwritten by T2, and vice versa.
        assert (1, 2) in graph.edge_set()
        assert (2, 1) in graph.edge_set()
        assert not graph.is_acyclic()

    def test_aborted_transactions_are_excluded(self):
        history = parse_history("w1[x1] a1 r2[x0] c2", multiversion=True)
        graph = mv_serialization_graph(history)
        assert graph.nodes == [2]


class TestMvToSv:
    def test_paper_mapping_h1si_to_h1si_sv(self):
        mapped = mv_to_sv(H1_SI.history)
        assert mapped.to_shorthand() == H1_SI_SV.history.to_shorthand()

    def test_mapped_history_is_serializable(self):
        assert is_serializable(mv_to_sv(H1_SI.history))

    def test_mapping_preserves_dataflow(self):
        assert same_dataflow(H1_SI.history, mv_to_sv(H1_SI.history))

    def test_mapping_strips_versions(self):
        mapped = mv_to_sv(H1_SI.history)
        assert not mapped.is_multiversion()

    def test_mapping_keeps_commit_order(self):
        mapped = mv_to_sv(H1_SI.history)
        assert mapped.terminal_index(2) < mapped.terminal_index(1)


class TestDataflowEquivalence:
    def test_h1si_and_h1si_sv_have_same_dataflow(self):
        assert same_dataflow(H1_SI.history, H1_SI_SV.history)

    def test_final_writers_match(self):
        assert final_writers(H1_SI.history) == final_writers(H1_SI_SV.history)
        assert final_writers(H1_SI.history) == {"x": 1, "y": 1}

    def test_different_dataflow_is_detected(self):
        mv = parse_history("w1[x1=10] c1 r2[x1=10] c2", multiversion=True)
        sv_wrong = parse_history("r2[x=50] c2 w1[x=10] c1")
        assert not same_dataflow(mv, sv_wrong)
