"""Unit tests for histories and the shorthand parser (repro.core.history)."""

from __future__ import annotations

import pytest

from repro.core.history import History, HistoryError, parse_history
from repro.core.operations import OperationKind, WriteAction, commit, read, write


class TestParser:
    def test_parse_simple_history(self):
        history = parse_history("r1[x] w1[x] c1")
        assert len(history) == 3
        assert history[0].kind is OperationKind.READ
        assert history[1].kind is OperationKind.WRITE
        assert history[2].kind is OperationKind.COMMIT
        assert all(op.txn == 1 for op in history)

    def test_parse_values(self):
        history = parse_history("r1[x=50] w1[x=10] c1")
        assert history[0].value == 50
        assert history[1].value == 10

    def test_parse_negative_values(self):
        history = parse_history("w1[y=-40] c1")
        assert history[0].value == -40

    def test_parse_h1_from_the_paper(self):
        text = "r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1"
        history = parse_history(text, name="H1")
        assert history.name == "H1"
        assert history.transactions() == [1, 2]
        assert history.to_shorthand() == text

    def test_parse_ellipses_are_ignored(self):
        history = parse_history("w1[x]...r2[x]...c1")
        assert len(history) == 3

    def test_parse_cursor_operations(self):
        history = parse_history("rc1[x] w2[x] wc1[x] c1")
        assert history[0].kind is OperationKind.CURSOR_READ
        assert history[2].kind is OperationKind.CURSOR_WRITE

    def test_parse_predicate_read(self):
        history = parse_history("r1[P] c1")
        assert history[0].kind is OperationKind.PREDICATE_READ
        assert history[0].predicate == "P"

    def test_parse_predicate_insert(self):
        history = parse_history("w2[insert y to P] c2")
        op = history[0]
        assert op.kind is OperationKind.PREDICATE_WRITE
        assert op.item == "y"
        assert op.predicate == "P"
        assert op.write_action is WriteAction.INSERT

    def test_parse_predicate_update_and_delete(self):
        update = parse_history("w2[y in P] c2")[0]
        assert update.write_action is WriteAction.UPDATE
        delete = parse_history("w2[delete y from P] c2")[0]
        assert delete.write_action is WriteAction.DELETE

    def test_parse_multiversion_history(self):
        history = parse_history("r1[x0=50] w1[x1=10] c1", multiversion=True)
        assert history[0].item == "x"
        assert history[0].version == 0
        assert history[1].version == 1
        assert history.is_multiversion()

    def test_versions_not_split_without_flag(self):
        history = parse_history("r1[x0=50] c1")
        assert history[0].item == "x0"
        assert history[0].version is None

    def test_parse_rejects_garbage(self):
        with pytest.raises(HistoryError):
            parse_history("r1[x] %%% c1")

    def test_parse_rejects_read_without_item(self):
        with pytest.raises(HistoryError):
            parse_history("r1 c1")

    def test_empty_text_yields_empty_history(self):
        assert len(parse_history("   ")) == 0

    def test_round_trip_through_shorthand(self):
        text = "r1[x=50] w1[x=10] r2[x=10] c2 a1"
        assert parse_history(parse_history(text).to_shorthand()).to_shorthand() == text


class TestHistoryValidation:
    def test_operations_after_commit_are_rejected(self):
        with pytest.raises(HistoryError):
            History([write(1, "x"), commit(1), read(1, "x")])

    def test_operations_after_abort_are_rejected(self):
        with pytest.raises(HistoryError):
            parse_history("w1[x] a1 r1[x]")


class TestHistoryQueries:
    def test_transaction_listing(self):
        history = parse_history("r1[x] r2[y] r3[z] c2 c1 c3")
        assert history.transactions() == [1, 2, 3]
        assert history.committed_transactions() == {1, 2, 3}

    def test_active_and_aborted(self):
        history = parse_history("w1[x] r2[x] a1")
        assert history.aborted_transactions() == {1}
        assert history.active_transactions() == {2}
        assert not history.is_complete()

    def test_terminal_index(self):
        history = parse_history("w1[x] r2[x] c2 c1")
        assert history.terminal_index(1) == 3
        assert history.terminal_index(2) == 2
        assert parse_history("w1[x]").terminal_index(1) is None

    def test_items_and_predicates(self):
        history = parse_history("r1[P] w2[insert y to P] r2[z] c2 c1")
        assert history.items() == {"y", "z"}
        assert history.predicates() == {"P"}

    def test_reads_and_writes_of_item(self):
        history = parse_history("r1[x] w2[x] rc3[x] wc3[x] c1 c2 c3")
        assert [index for index, _ in history.reads_of("x")] == [0, 2]
        assert [index for index, _ in history.writes_of("x")] == [1, 3]

    def test_operations_of_transaction(self):
        history = parse_history("r1[x] r2[y] w1[x] c1 c2")
        assert len(history.operations_of(1)) == 3
        assert len(history.operations_of(2)) == 2

    def test_committed_projection_drops_uncommitted(self):
        history = parse_history("w1[x] r2[x] a1 c2")
        projection = history.committed_projection()
        assert projection.transactions() == [2]
        assert all(op.txn == 2 for op in projection)

    def test_slicing_and_concatenation(self):
        history = parse_history("r1[x] w1[x] c1")
        assert len(history[:2]) == 2
        combined = history[:2] + parse_history("c1")
        assert combined.to_shorthand() == "r1[x] w1[x] c1"

    def test_final_written_values(self):
        history = parse_history("w1[x=10] w2[x=20] c2 c1")
        # Both committed; the later write wins.
        assert history.final_written_values() == {"x": 20}


class TestSerialHistories:
    def test_serial_history_is_detected(self):
        history = parse_history("r1[x] w1[x] c1 r2[x] c2")
        assert history.is_serial()
        assert history.serial_order() == [1, 2]

    def test_interleaved_history_is_not_serial(self):
        history = parse_history("r1[x] r2[y] c1 c2")
        assert not history.is_serial()
        assert history.serial_order() is None

    def test_conflicting_pairs_on_h1(self):
        history = parse_history(
            "r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1")
        pairs = history.conflicting_pairs()
        described = {(earlier.txn, later.txn, earlier.item) for _, _, earlier, later in pairs}
        assert (1, 2, "x") in described  # w1[x] before r2[x]
        assert (2, 1, "y") in described  # r2[y] before w1[y]
