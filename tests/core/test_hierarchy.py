"""Unit tests for the hierarchy relations and the declared Figure 2 lattice."""

from __future__ import annotations


from repro.core.catalog import CATALOG
from repro.core.hierarchy import (
    FIGURE_2_EDGES,
    FIGURE_2_INCOMPARABLE,
    REMARKS,
    Relation,
    compare_levels,
    declared_order,
    is_declared_weaker,
)
from repro.core.history import parse_history
from repro.core.isolation import (
    ANSI_STRICT_LEVELS,
    CORRECTED_LEVELS,
    IsolationLevelName,
)
from repro.workloads.generators import history_corpus


def _corpus():
    catalogue = [entry.history for entry in CATALOG.values() if not entry.multiversion]
    return catalogue + history_corpus(seed=11, count=150)


class TestCompareLevels:
    def test_corrected_levels_form_a_chain(self):
        corpus = _corpus()
        ru = CORRECTED_LEVELS[IsolationLevelName.READ_UNCOMMITTED]
        rc = CORRECTED_LEVELS[IsolationLevelName.READ_COMMITTED]
        rr = CORRECTED_LEVELS[IsolationLevelName.REPEATABLE_READ]
        ser = CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE]
        assert compare_levels(ru, rc, corpus).relation is Relation.WEAKER
        assert compare_levels(rc, rr, corpus).relation is Relation.WEAKER
        assert compare_levels(rr, ser, corpus).relation is Relation.WEAKER

    def test_comparison_is_antisymmetric(self):
        corpus = _corpus()
        rc = CORRECTED_LEVELS[IsolationLevelName.READ_COMMITTED]
        ser = CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE]
        assert compare_levels(ser, rc, corpus).relation is Relation.STRONGER

    def test_level_is_equivalent_to_itself(self):
        corpus = _corpus()
        rc = CORRECTED_LEVELS[IsolationLevelName.READ_COMMITTED]
        assert compare_levels(rc, rc, corpus).relation is Relation.EQUIVALENT

    def test_anomaly_serializable_weaker_than_true_serializability(self):
        """The crux of Section 3: forbidding A1-A3 does not give serializability."""
        corpus = _corpus()
        anomaly_ser = ANSI_STRICT_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]
        corrected_ser = CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE]
        result = compare_levels(anomaly_ser, corrected_ser, corpus)
        assert result.relation is Relation.WEAKER
        # H1 and H3 are among the witnesses separating them.
        witnesses = {history.name for history in result.only_first}
        assert {"H1", "H3"} & witnesses

    def test_serializable_histories_are_ignored(self):
        serial_only = [parse_history("r1[x] c1 r2[x] c2")]
        rc = CORRECTED_LEVELS[IsolationLevelName.READ_COMMITTED]
        ser = CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE]
        assert compare_levels(rc, ser, serial_only).relation is Relation.EQUIVALENT

    def test_callable_levels_are_accepted(self):
        corpus = _corpus()
        permissive = lambda history: True  # noqa: E731 - deliberately tiny
        ser = CORRECTED_LEVELS[IsolationLevelName.SERIALIZABLE]
        assert compare_levels(permissive, ser, corpus).relation is Relation.WEAKER

    def test_witnesses_are_rendered(self):
        corpus = _corpus()
        ru = CORRECTED_LEVELS[IsolationLevelName.READ_UNCOMMITTED]
        rc = CORRECTED_LEVELS[IsolationLevelName.READ_COMMITTED]
        result = compare_levels(ru, rc, corpus)
        rendered = result.witnesses()
        assert rendered["only_first"]
        assert not rendered["only_second"]


class TestDeclaredLattice:
    def test_every_edge_orders_lower_below_higher(self):
        for edge in FIGURE_2_EDGES:
            assert is_declared_weaker(edge.lower, edge.higher)
            assert not is_declared_weaker(edge.higher, edge.lower)

    def test_transitive_ordering(self):
        assert is_declared_weaker(IsolationLevelName.DEGREE_0,
                                  IsolationLevelName.SERIALIZABLE)
        assert is_declared_weaker(IsolationLevelName.READ_COMMITTED,
                                  IsolationLevelName.SERIALIZABLE)

    def test_declared_order_directions(self):
        assert declared_order(IsolationLevelName.READ_COMMITTED,
                              IsolationLevelName.REPEATABLE_READ) is Relation.WEAKER
        assert declared_order(IsolationLevelName.REPEATABLE_READ,
                              IsolationLevelName.READ_COMMITTED) is Relation.STRONGER
        assert declared_order(IsolationLevelName.SERIALIZABLE,
                              IsolationLevelName.SERIALIZABLE) is Relation.EQUIVALENT

    def test_repeatable_read_and_snapshot_are_incomparable(self):
        assert declared_order(IsolationLevelName.REPEATABLE_READ,
                              IsolationLevelName.SNAPSHOT_ISOLATION) is Relation.INCOMPARABLE
        assert (IsolationLevelName.REPEATABLE_READ,
                IsolationLevelName.SNAPSHOT_ISOLATION) in FIGURE_2_INCOMPARABLE

    def test_edges_are_annotated_with_phenomena(self):
        annotations = {edge.lower: edge.differentiators for edge in FIGURE_2_EDGES}
        assert annotations[IsolationLevelName.DEGREE_0] == ("P0",)
        assert annotations[IsolationLevelName.READ_UNCOMMITTED] == ("P1",)
        assert annotations[IsolationLevelName.REPEATABLE_READ] == ("P3",)

    def test_remarks_reference_known_levels(self):
        for _, lower, relation, higher in REMARKS:
            assert isinstance(lower, IsolationLevelName)
            assert isinstance(higher, IsolationLevelName)
            assert relation in (Relation.WEAKER, Relation.INCOMPARABLE)

    def test_remark_1_chain_is_declared(self):
        assert is_declared_weaker(IsolationLevelName.READ_UNCOMMITTED,
                                  IsolationLevelName.READ_COMMITTED)
        assert is_declared_weaker(IsolationLevelName.READ_COMMITTED,
                                  IsolationLevelName.REPEATABLE_READ)
        assert is_declared_weaker(IsolationLevelName.REPEATABLE_READ,
                                  IsolationLevelName.SERIALIZABLE)
