"""Unit tests for footprint conflicts and static dependency graph construction."""

from __future__ import annotations

from repro.engine.programs import (
    Commit,
    ReadItem,
    SelectPredicate,
    StepFootprint,
    TransactionProgram,
    WriteItem,
)
from repro.static_analysis import build_sdg
from repro.storage.predicates import whole_table
from repro.workloads.program_sets import (
    ProgramSetSpec,
    available_program_sets,
    build_program_set,
)
from repro.workloads.scenarios import ALL_SCENARIOS


def _program(txn, *steps):
    return TransactionProgram(txn=txn, steps=list(steps))


class TestConflictsWith:
    def test_opaque_conflicts_with_everything(self):
        opaque = StepFootprint(opaque=True)
        empty = StepFootprint()
        read = StepFootprint(reads=frozenset("x"))
        assert opaque.conflicts_with(opaque)
        assert opaque.conflicts_with(empty)
        assert empty.conflicts_with(opaque)
        assert opaque.conflicts_with(read)
        assert read.conflicts_with(opaque)

    def test_empty_footprints_do_not_conflict(self):
        assert not StepFootprint().conflicts_with(StepFootprint())

    def test_read_read_overlap_is_not_a_conflict(self):
        a = StepFootprint(reads=frozenset(("x", "y")))
        b = StepFootprint(reads=frozenset(("y", "z")))
        assert not a.conflicts_with(b)
        assert not b.conflicts_with(a)

    def test_write_write_overlap_conflicts(self):
        a = StepFootprint(writes=frozenset(("x",)))
        b = StepFootprint(writes=frozenset(("x",)))
        assert a.conflicts_with(b)

    def test_write_read_overlap_conflicts_both_ways(self):
        writer = StepFootprint(writes=frozenset(("x",)))
        reader = StepFootprint(reads=frozenset(("x",)))
        assert writer.conflicts_with(reader)
        assert reader.conflicts_with(writer)

    def test_disjoint_items_do_not_conflict(self):
        a = StepFootprint(reads=frozenset(("x",)), writes=frozenset(("y",)))
        b = StepFootprint(reads=frozenset(("z",)), writes=frozenset(("w",)))
        assert not a.conflicts_with(b)
        assert not b.conflicts_with(a)

    def test_predicate_select_is_opaque(self):
        select = SelectPredicate(whole_table("all-tasks", "tasks"))
        assert select.footprint().opaque
        item = ReadItem("x").footprint()
        assert select.footprint().conflicts_with(item)


class TestBuildSdg:
    def test_enumerates_all_three_edge_kinds(self):
        programs = [
            _program(1,ReadItem("x"), WriteItem("x", 1), Commit()),
            _program(2,WriteItem("x", 2), Commit()),
        ]
        sdg = build_sdg(programs)
        ww = {(e.src_txn, e.dst_txn, e.item) for e in sdg.edges_of("ww")}
        wr = {(e.src_txn, e.dst_txn, e.item) for e in sdg.edges_of("wr")}
        rw = {(e.src_txn, e.dst_txn, e.item) for e in sdg.edges_of("rw")}
        assert ww == {(1, 2, "x")}  # recorded once per unordered pair
        assert wr == {(2, 1, "x")}  # T2's write vs T1's read
        assert rw == {(1, 2, "x")}  # T1's read vs T2's write
        assert not sdg.has_opaque

    def test_no_intra_transaction_edges(self):
        programs = [_program(1,ReadItem("x"), WriteItem("x", 1), Commit())]
        sdg = build_sdg(programs)
        assert sdg.edges == ()

    def test_opaque_steps_recorded_and_excluded_from_items(self):
        select = SelectPredicate(whole_table("all-tasks", "tasks"))
        programs = [
            _program(1,select, Commit()),
            _program(2,WriteItem("x", 1), Commit()),
        ]
        sdg = build_sdg(programs)
        assert sdg.has_opaque
        assert (1, 0) in sdg.opaque_steps
        assert sdg.read_items(1) == frozenset()
        assert sdg.write_items(2) == frozenset(("x",))
        # Opaque steps contribute no concrete edges — the rules handle them.
        assert sdg.edges == ()

    def test_deterministic_construction(self):
        programs = [
            _program(1,ReadItem("y"), ReadItem("x"), WriteItem("y", 1), Commit()),
            _program(2,WriteItem("x", 2), WriteItem("y", 3), Commit()),
        ]
        assert build_sdg(programs) == build_sdg(programs)

    def test_candidate_helpers_on_lost_update_shape(self):
        programs = [
            _program(1,ReadItem("x"), WriteItem("x", 1), Commit()),
            _program(2,ReadItem("x"), WriteItem("x", 2), Commit()),
        ]
        sdg = build_sdg(programs)
        assert (1, "x") in sdg.read_then_write_pairs()
        assert (2, "x") in sdg.read_then_write_pairs()

    def test_write_skew_candidates_require_crossed_pairs(self):
        crossed = build_sdg([
            _program(1,ReadItem("x"), ReadItem("y"), WriteItem("x", 1), Commit()),
            _program(2,ReadItem("x"), ReadItem("y"), WriteItem("y", 2), Commit()),
        ])
        assert crossed.write_skew_candidates()
        uncrossed = build_sdg([
            _program(1,ReadItem("x"), WriteItem("x", 1), Commit()),
            _program(2,ReadItem("y"), WriteItem("y", 2), Commit()),
        ])
        assert not uncrossed.write_skew_candidates()

    def test_edge_describe_is_readable(self):
        programs = [
            _program(1,WriteItem("x", 1), Commit()),
            _program(2,WriteItem("x", 2), Commit()),
        ]
        (edge,) = build_sdg(programs).edges_of("ww")
        assert "ww" in edge.describe() and "x" in edge.describe()


class TestRegisteredWorkloads:
    def test_every_program_set_builds_a_consistent_sdg(self):
        for name in available_program_sets():
            _, programs = build_program_set(ProgramSetSpec.make(name))
            sdg = build_sdg(programs)
            ids = {program.txn for program in programs}
            assert set(sdg.txns) == ids
            for edge in sdg.edges:
                assert edge.src_txn in ids
                assert edge.dst_txn in ids
                assert edge.src_txn != edge.dst_txn
                assert edge.kind in ("ww", "wr", "rw")
                if edge.kind == "ww":
                    assert edge.item in sdg.write_items(edge.src_txn)
                    assert edge.item in sdg.write_items(edge.dst_txn)
                elif edge.kind == "wr":
                    assert edge.item in sdg.write_items(edge.src_txn)
                    assert edge.item in sdg.read_items(edge.dst_txn)
                else:
                    assert edge.item in sdg.read_items(edge.src_txn)
                    assert edge.item in sdg.write_items(edge.dst_txn)

    def test_contending_program_sets_have_edges(self):
        _, programs = build_program_set(ProgramSetSpec.make("increments"))
        assert build_sdg(programs).edges_of("ww")
        _, programs = build_program_set(ProgramSetSpec.make("write-skew"))
        assert build_sdg(programs).write_skew_candidates()

    def test_every_scenario_variant_builds_an_sdg(self):
        for scenario in ALL_SCENARIOS:
            for variant in scenario.variants:
                sdg = build_sdg(variant.build_programs())
                assert len(sdg.txns) >= 2
                # Every curated anomaly scenario has contention somewhere:
                # either concrete conflict edges or opaque steps.
                assert sdg.edges or sdg.has_opaque
