"""Unit tests for the level-aware verdict rules (repro.static_analysis.verdicts)."""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from repro.static_analysis import (
    PATTERN_CODES,
    Verdict,
    analyze_programs,
    analyze_scenario_programs,
    impossible_codes,
)
from repro.static_analysis.levels import PROFILED_LEVELS, profile_for
from repro.workloads.scenarios import scenario_by_code

D0 = IsolationLevelName.DEGREE_0
RU = IsolationLevelName.READ_UNCOMMITTED
RC = IsolationLevelName.READ_COMMITTED
CS = IsolationLevelName.CURSOR_STABILITY
RR = IsolationLevelName.REPEATABLE_READ
SI = IsolationLevelName.SNAPSHOT_ISOLATION
SER = IsolationLevelName.SERIALIZABLE


def _program(txn, *steps):
    return TransactionProgram(txn=txn, steps=list(steps))


def _lost_update_programs():
    return [
        _program(1, ReadItem("x"), WriteItem("x", 1), Commit()),
        _program(2, ReadItem("x"), WriteItem("x", 2), Commit()),
    ]


def _scenario_verdict(code, variant_name, level):
    variant = scenario_by_code(code).variant(variant_name)
    return analyze_scenario_programs(variant.build_programs(), code, level)


class TestProfiles:
    def test_every_profiled_level_resolves(self):
        for level in PROFILED_LEVELS:
            profile_for(level)

    def test_phenomenon_defined_levels_have_no_profile(self):
        with pytest.raises(KeyError):
            profile_for(IsolationLevelName.ANSI_READ_COMMITTED)

    def test_lock_scope_booleans_follow_table_2(self):
        assert not profile_for(RU).all_reads_locked
        assert profile_for(RU).write_locks_long
        assert not profile_for(D0).write_locks_long
        assert profile_for(RC).all_reads_locked
        assert not profile_for(RC).read_locks_long
        assert profile_for(RR).read_locks_long
        assert not profile_for(RR).predicate_read_locks_long
        assert profile_for(SER).predicate_read_locks_long
        assert profile_for(SI).snapshot_reads
        assert not profile_for(SI).single_version


class TestPatternAnalysis:
    def test_covers_every_pattern_code(self):
        verdicts = analyze_programs(_lost_update_programs(), RC)
        assert set(verdicts) == set(PATTERN_CODES)
        for code, verdict in verdicts.items():
            assert verdict.code == code
            assert verdict.level is RC
            assert verdict.reason

    def test_structural_impossibility_without_candidate_edges(self):
        # Two pure readers: no writes at all, so every write-involved
        # phenomenon is structurally impossible even at Degree 0.
        readers = [
            _program(1, ReadItem("x"), Commit()),
            _program(2, ReadItem("x"), Commit()),
        ]
        verdicts = analyze_programs(readers, D0)
        for code in ("P0", "P1", "P2", "P4", "A5A", "A5B"):
            assert verdicts[code].verdict is Verdict.IMPOSSIBLE, code

    def test_long_write_locks_kill_p0(self):
        verdicts = analyze_programs(_lost_update_programs(), RU)
        assert verdicts["P0"].verdict is Verdict.IMPOSSIBLE
        # ...but not at Degree 0, whose write locks are short.
        assert analyze_programs(_lost_update_programs(), D0)["P0"].verdict \
            is not Verdict.IMPOSSIBLE

    def test_possible_verdicts_carry_witnessing_edges(self):
        verdicts = analyze_programs(_lost_update_programs(), RC)
        p4 = verdicts["P4"]
        assert p4.verdict is Verdict.POSSIBLE
        assert p4.edges
        assert any("x" in edge.describe() for edge in p4.edges)

    def test_serializable_kills_every_pattern_here(self):
        assert set(impossible_codes(_lost_update_programs(), SER)) == \
            set(PATTERN_CODES)

    def test_pattern_p2_survives_snapshot_isolation(self):
        # Pattern semantics: the *broad* P2 (r1..w2 in any commit order)
        # stays achievable on SI histories, unlike the scenario's strict
        # non-repeatable read.  The detector-pruning path must not claim
        # IMPOSSIBLE here.
        verdicts = analyze_programs(_lost_update_programs(), SI)
        assert verdicts["P2"].verdict is not Verdict.IMPOSSIBLE

    def test_unprofiled_level_raises(self):
        with pytest.raises(KeyError):
            analyze_programs(_lost_update_programs(),
                             IsolationLevelName.ANOMALY_SERIALIZABLE)


class TestScenarioVerdicts:
    """Spot checks against the paper's Table 4 rows (scenario semantics)."""

    def test_read_uncommitted_only_kills_p0(self):
        assert _scenario_verdict("P0", "interleaved-writes", RU).verdict \
            is Verdict.IMPOSSIBLE
        assert _scenario_verdict("P1", "read-of-rolled-back-write", RU).verdict \
            is Verdict.POSSIBLE

    def test_read_committed_kills_dirty_reads(self):
        assert _scenario_verdict("P1", "read-of-rolled-back-write", RC).verdict \
            is Verdict.IMPOSSIBLE
        assert _scenario_verdict("P4", "plain-read-modify-write", RC).verdict \
            is Verdict.POSSIBLE

    def test_repeatable_read_kills_item_phenomena(self):
        for code, variant_name in (("P4", "plain-read-modify-write"),
                                   ("P2", "plain-reread"),
                                   ("A5A", "audit-across-transfer"),
                                   ("A5B", "plain-reads")):
            verdict = _scenario_verdict(code, variant_name, RR)
            assert verdict.verdict is Verdict.IMPOSSIBLE, (code, verdict.reason)

    def test_snapshot_isolation_splits_the_skews(self):
        # The paper's SI headline: read skew dies (single-snapshot reads),
        # write skew survives (first-committer-wins only checks ww).
        assert _scenario_verdict("A5A", "audit-across-transfer", SI).verdict \
            is Verdict.IMPOSSIBLE
        assert _scenario_verdict("A5B", "plain-reads", SI).verdict \
            is Verdict.POSSIBLE

    def test_serializable_kills_everything_statically_visible(self):
        for code, variant_name in (("P0", "interleaved-writes"),
                                   ("P4", "plain-read-modify-write"),
                                   ("A5B", "plain-reads")):
            assert _scenario_verdict(code, variant_name, SER).verdict \
                is Verdict.IMPOSSIBLE, code

    def test_degree_0_claims_nothing_impossible(self):
        for scenario_code, variant_name in (("P0", "interleaved-writes"),
                                            ("P4", "plain-read-modify-write"),
                                            ("A5A", "audit-across-transfer")):
            verdict = _scenario_verdict(scenario_code, variant_name, D0)
            assert verdict.verdict is not Verdict.IMPOSSIBLE, scenario_code

    def test_opaque_variants_never_claim_impossible_from_structure(self):
        # Phantom scenarios go through predicate selects (opaque footprints):
        # no structural IMPOSSIBLE may fire below SERIALIZABLE's predicate
        # locks... and even there the rule must rest on lock scope, not on an
        # (empty) edge set.
        verdict = _scenario_verdict("P3", "employee-count-H3", RR)
        assert verdict.verdict is Verdict.UNKNOWN

    def test_describe_renders_code_level_and_verdict(self):
        verdict = _scenario_verdict("P0", "interleaved-writes", RU)
        text = verdict.describe()
        assert "P0" in text and "impossible" in text.lower()
