"""Detector pruning through the explorer: identical results, less detection work."""

from __future__ import annotations

from repro.core.isolation import IsolationLevelName
from repro.explorer.explorer import explore
from repro.static_analysis import Verdict
from repro.workloads.program_sets import ProgramSetSpec

RC = IsolationLevelName.READ_COMMITTED
RR = IsolationLevelName.REPEATABLE_READ
SER = IsolationLevelName.SERIALIZABLE

SPEC = ProgramSetSpec.make("increments")
LEVELS = (RC, RR, SER)


class TestStaticPruning:
    def test_pruned_run_is_bit_identical_to_unpruned(self):
        """The empirical soundness gate for detector pruning.

        Classification records (and hence the result fingerprint) must be
        byte-for-byte identical with pruning on and off: pruning may only
        skip detectors that can never fire, never change what is recorded.
        """
        baseline = explore(SPEC, levels=LEVELS)
        pruned = explore(SPEC, levels=LEVELS, static_pruning=True)
        assert pruned.fingerprint() == baseline.fingerprint()

    def test_verdicts_are_recorded_either_way(self):
        result = explore(SPEC, levels=(RC,))
        assert not result.static_pruning
        assert result.static_verdicts[RC]
        codes = result.pruned_detectors(RC)
        assert codes  # increments statically rules out several phenomena at RC
        for code in codes:
            assert result.static_verdicts[RC][code].verdict is Verdict.IMPOSSIBLE

    def test_pruned_counts_surface_in_cache_stats(self):
        pruned = explore(SPEC, levels=(RC, SER), static_pruning=True)
        assert pruned.static_pruning
        for level in (RC, SER):
            stats = pruned.levels[level].cache_stats
            assert stats["static_pruned_detectors"] == \
                len(pruned.pruned_detectors(level))
            assert stats["static_pruned_detectors"] > 0

    def test_unpruned_run_reports_zero_pruned_detectors(self):
        baseline = explore(SPEC, levels=(RC,))
        assert baseline.levels[RC].cache_stats[
            "static_pruned_detectors"] == 0

    def test_pruning_composes_with_parallel_workers(self):
        pruned = explore(SPEC, levels=(RC,), static_pruning=True, workers=2)
        baseline = explore(SPEC, levels=(RC,))
        assert pruned.fingerprint() == baseline.fingerprint()


class TestCoverageReportNotes:
    def test_pruned_detector_counts_surface_in_the_rendered_report(self):
        from repro.analysis.coverage import build_coverage_report

        pruned = explore(SPEC, levels=(RC, RR), static_pruning=True)
        report = build_coverage_report(pruned)
        assert any("statically pruned detectors" in note
                   for note in report.notes)
        rendered = report.render()
        assert "statically pruned detectors" in rendered
        assert RC.value in rendered

    def test_unpruned_report_carries_no_pruning_note(self):
        from repro.analysis.coverage import build_coverage_report

        report = build_coverage_report(explore(SPEC, levels=(RC,)))
        assert not any("statically pruned" in note for note in report.notes)

    def test_sampling_truncation_note(self):
        """A sample the seen-set cap refused to dedupe gets a report caveat.

        ``_should_dedupe`` only refuses tracking when the sample itself
        exceeds ``_DEDUPE_TRACK_MAX`` draws — too big to execute in a unit
        test — so this builds the report from a structural stand-in (the
        documented contract of ``build_coverage_report``) with the exact
        space shape such a run produces: ``mode="sample"``, huge total,
        ``dedupe=False``.
        """
        from types import SimpleNamespace

        from repro.analysis.coverage import build_coverage_report
        from repro.explorer.schedules import _DEDUPE_TRACK_MAX

        selected = _DEDUPE_TRACK_MAX + 1
        result = SimpleNamespace(
            spec=SimpleNamespace(describe=lambda: "huge-contention"),
            space=SimpleNamespace(mode="sample", total=10**18,
                                  selected=selected, dedupe=False),
            levels={RC: SimpleNamespace(records=[], cache_stats={})},
        )
        report = build_coverage_report(result)
        note = next(note for note in report.notes
                    if "without dedupe tracking" in note)
        assert "repeated schedules" in note
        assert str(selected) in note
        assert note in report.render()

    def test_whole_space_sample_carries_no_truncation_note(self):
        from repro.analysis.coverage import build_coverage_report

        result = explore(SPEC, levels=(RC,), mode="sample", max_schedules=32)
        assert result.space.dedupe
        report = build_coverage_report(result)
        assert not any("dedupe" in note for note in report.notes)
