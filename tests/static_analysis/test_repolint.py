"""Unit tests for the repo invariant linter (repro.static_analysis.repolint)."""

from __future__ import annotations

import ast
import textwrap

from repro.static_analysis.repolint import (
    lint_checkpoints,
    lint_determinism,
    lint_footprints,
    lint_optional_imports,
    lint_picklability,
    lint_repo,
    lint_store_records,
    lint_tree,
    main,
)


def _lint(source, check):
    tree = ast.parse(textwrap.dedent(source))
    if check == "determinism":
        return lint_determinism(tree, "<test>")
    return lint_checkpoints(tree, "<test>")


class TestDeterminism:
    def test_flags_wall_clock_calls(self):
        source = """
            import time
            def stamp():
                return time.time()
        """
        (violation,) = _lint(source, "determinism")
        assert violation.check == "determinism"
        assert "time.time" in violation.message

    def test_flags_datetime_now_and_module_level_random(self):
        source = """
            import random
            from datetime import datetime
            def unstable():
                return datetime.now(), random.random(), random.shuffle([])
        """
        violations = _lint(source, "determinism")
        assert len(violations) == 3

    def test_allows_perf_counter_and_seeded_random(self):
        source = """
            import random, time
            def stable(seed):
                rng = random.Random(seed)
                start = time.perf_counter()
                return rng.random(), time.perf_counter() - start
        """
        assert _lint(source, "determinism") == []


class TestCheckpoints:
    COMPLETE = """
        class Engine:
            def __init__(self):
                self.state = {}
            def checkpoint(self):
                return dict(self.state)
            def restore(self, token):
                self.state = dict(token)
    """

    def test_accepts_complete_checkpoint(self):
        assert _lint(self.COMPLETE, "checkpoints") == []

    def test_flags_attribute_missing_from_token(self):
        source = """
            class Engine:
                def __init__(self):
                    self.state = {}
                    self.pending = []
                def checkpoint(self):
                    return dict(self.state)
                def restore(self, token):
                    self.state = dict(token)
        """
        (violation,) = _lint(source, "checkpoints")
        assert violation.check == "checkpoint-completeness"
        assert "pending" in violation.message

    def test_checkpoint_stable_exempts_configuration(self):
        source = """
            class Engine:
                _checkpoint_stable = ("policy",)
                def __init__(self, policy):
                    self.policy = policy
                    self.state = {}
                def checkpoint(self):
                    return dict(self.state)
        """
        assert _lint(source, "checkpoints") == []

    def test_helper_methods_count_as_references(self):
        source = """
            class Engine:
                def __init__(self):
                    self.state = {}
                    self.locks = {}
                def _base_checkpoint(self):
                    return (dict(self.state), dict(self.locks))
                def checkpoint(self):
                    return self._base_checkpoint()
        """
        assert _lint(source, "checkpoints") == []

    def test_skips_raise_only_stubs(self):
        source = """
            class Engine:
                def __init__(self):
                    self.database = None
                def checkpoint(self):
                    '''Unsupported.'''
                    raise RuntimeError("no checkpoints here")
        """
        assert _lint(source, "checkpoints") == []

    def test_classes_without_checkpoint_are_ignored(self):
        source = """
            class Plain:
                def __init__(self):
                    self.anything = 1
        """
        assert _lint(source, "checkpoints") == []


class TestOptionalImports:
    def _lint(self, source):
        return lint_optional_imports(ast.parse(textwrap.dedent(source)), "<test>")

    def test_flags_module_scope_numpy_import(self):
        (violation,) = self._lint("import numpy as np\n")
        assert violation.check == "optional-imports"
        assert "numpy" in violation.message

    def test_flags_from_import_and_guarded_import(self):
        source = """
            from numpy import ndarray
            try:
                import numpy.linalg
            except ImportError:
                pass
        """
        violations = self._lint(source)
        assert len(violations) == 2

    def test_allows_function_local_import(self):
        source = """
            def _probe():
                try:
                    import numpy
                except ImportError:
                    return None
                return numpy
        """
        assert self._lint(source) == []

    def test_ignores_required_dependencies(self):
        assert self._lint("import os\nfrom dataclasses import dataclass\n") == []


class TestStoreRecords:
    def test_current_serialization_is_clean(self):
        assert lint_store_records() == []

    def test_broken_round_trip_is_flagged(self, monkeypatch):
        """A decoder that drops information must produce a violation."""
        from repro.persist import records as rec

        original = rec.record_from_row

        def lossy(row):
            record = original(row)
            return record.__class__(**{**record.__dict__, "blocked_events": 0})

        monkeypatch.setattr(rec, "record_from_row", lossy)
        violations = lint_store_records()
        assert violations
        assert all(violation.check == "store-records"
                   for violation in violations)

    def test_nondeterministic_encoding_is_flagged(self, monkeypatch):
        from itertools import count

        from repro.persist import records as rec

        original = rec.cell_to_payload
        ticker = count()

        def impure(cell):
            return original(cell) + f"/*{next(ticker)}*/"

        monkeypatch.setattr(rec, "cell_to_payload", impure)
        violations = lint_store_records()
        assert any("not deterministic" in violation.message
                   for violation in violations)


class TestRepoWide:
    def test_runtime_checks_are_clean(self):
        assert lint_picklability() == []
        assert lint_footprints() == []
        assert lint_store_records() == []

    def test_whole_repo_is_clean(self):
        """The CI gate: zero violations across src/repro, AST + runtime."""
        assert lint_repo() == []

    def test_main_exit_status_reflects_cleanliness(self, capsys):
        assert main([]) == 0
        assert "repolint: clean" in capsys.readouterr().out

    def test_lint_tree_combines_all_ast_checks(self):
        source = textwrap.dedent("""
            import time
            import numpy
            class Engine:
                def __init__(self):
                    self.extra = 1
                    self.state = {}
                def checkpoint(self):
                    return (time.time(), dict(self.state))
        """)
        violations = lint_tree(ast.parse(source), "<test>")
        assert {violation.check for violation in violations} == \
            {"determinism", "checkpoint-completeness", "optional-imports"}
