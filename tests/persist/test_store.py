"""The store contract: campaigns, cursors, atomic chunk commits, dedupe tables.

Every test runs against both backends via the parametrized ``store`` fixture
— the contract is the point, not either implementation.
"""

from __future__ import annotations

import pytest

from repro.explorer.memo import HistoryClassification, ScheduleOutcome
from repro.explorer.worker import ScheduleRecord
from repro.persist import (
    CampaignConfigMismatch,
    SqliteStore,
    StoreError,
)

CONFIG = {"spec_name": "increments", "spec_params": [], "mode": "auto",
          "max_schedules": 100, "seed": 0, "reduction": "none",
          "chunk_size": 4}


def record(index: int, stalled: bool = False) -> ScheduleRecord:
    return ScheduleRecord(
        interleaving=(1, 2, 1, index),
        history=f"w1[x{index}] c1 c2",
        serializable=index % 2 == 0,
        phenomena=("P1",) if index % 3 == 0 else (),
        committed=(1, 2),
        aborted=(),
        blocked_events=index,
        deadlocks=0,
        stalled=stalled,
    )


def outcome(index: int) -> ScheduleOutcome:
    rec = record(index)
    return ScheduleOutcome(rec.history, rec.serializable, rec.phenomena,
                           rec.committed, rec.aborted, rec.blocked_events,
                           rec.deadlocks, rec.stalled)


class TestCampaigns:
    def test_open_creates_and_returns_config(self, store):
        info = store.open_campaign("c1", CONFIG)
        assert info.campaign_id == "c1"
        assert info.config == CONFIG

    def test_reopen_validates_config(self, store):
        store.open_campaign("c1", CONFIG)
        assert store.open_campaign("c1", CONFIG).config == CONFIG
        assert store.open_campaign("c1").config == CONFIG  # no config: loads

    def test_reopen_with_different_config_is_refused(self, store):
        store.open_campaign("c1", CONFIG)
        with pytest.raises(CampaignConfigMismatch):
            store.open_campaign("c1", {**CONFIG, "seed": 1})

    def test_open_unknown_without_config_is_an_error(self, store):
        with pytest.raises(StoreError):
            store.open_campaign("missing")

    def test_get_campaign(self, store):
        assert store.get_campaign("c1") is None
        store.open_campaign("c1", CONFIG)
        assert store.get_campaign("c1").config == CONFIG

    def test_list_campaigns_in_creation_order(self, store):
        store.open_campaign("b", CONFIG)
        store.open_campaign("a", {**CONFIG, "seed": 9})
        assert [info.campaign_id for info in store.list_campaigns()] == ["b", "a"]


class TestChunkCommits:
    def test_cursor_starts_at_zero(self, store):
        store.open_campaign("c1", CONFIG)
        assert store.cursor("c1", "scope") == 0

    def test_commit_advances_cursor_and_counts_records(self, store):
        store.open_campaign("c1", CONFIG)
        store.commit_chunk("c1", "scope", 0, [record(0), record(1)])
        store.commit_chunk("c1", "scope", 1, [record(2)])
        progress = store.scope_progress("c1")["scope"]
        assert progress.cursor == 2
        assert progress.records == 3
        assert not progress.complete

    def test_out_of_order_commit_is_refused(self, store):
        store.open_campaign("c1", CONFIG)
        store.commit_chunk("c1", "scope", 0, [record(0)])
        for bad_index in (0, 2, 5):
            with pytest.raises(StoreError):
                store.commit_chunk("c1", "scope", bad_index, [record(9)])
        assert store.cursor("c1", "scope") == 1  # refusals left no trace

    def test_commit_against_unknown_campaign_is_refused(self, store):
        with pytest.raises(StoreError):
            store.commit_chunk("ghost", "scope", 0, [record(0)])

    def test_load_chunk_round_trips_records(self, store):
        store.open_campaign("c1", CONFIG)
        chunk = (record(0), record(1, stalled=True))
        store.commit_chunk("c1", "scope", 0, chunk)
        loaded, reps = store.load_chunk("c1", "scope", 0)
        assert loaded == chunk
        assert reps == ()

    def test_load_chunk_round_trips_rep_records(self, store):
        store.open_campaign("c1", CONFIG)
        chunk = (record(0), record(1), record(2))
        reps = (record(1),)
        store.commit_chunk("c1", "scope", 0, chunk, rep_records=reps)
        loaded, loaded_reps = store.load_chunk("c1", "scope", 0)
        assert loaded == chunk
        assert loaded_reps == reps

    def test_load_uncommitted_chunk_is_an_error(self, store):
        store.open_campaign("c1", CONFIG)
        with pytest.raises(StoreError):
            store.load_chunk("c1", "scope", 0)

    def test_iter_records_preserves_stream_order(self, store):
        store.open_campaign("c1", CONFIG)
        store.commit_chunk("c1", "scope", 0, [record(0), record(1)])
        store.commit_chunk("c1", "scope", 1, [record(2)])
        assert list(store.iter_records("c1", "scope")) == [
            record(0), record(1), record(2)]

    def test_scopes_are_independent(self, store):
        store.open_campaign("c1", CONFIG)
        store.commit_chunk("c1", "a", 0, [record(0)])
        assert store.cursor("c1", "a") == 1
        assert store.cursor("c1", "b") == 0

    def test_mark_scope_complete_persists_stats(self, store):
        store.open_campaign("c1", CONFIG)
        store.commit_chunk("c1", "scope", 0, [record(0)])
        store.mark_scope_complete("c1", "scope", 1, {"executed": 1})
        progress = store.scope_progress("c1")["scope"]
        assert progress.complete
        assert progress.total_chunks == 1
        assert progress.stats == {"executed": 1}


class TestDedupeTables:
    def test_outcomes_round_trip(self, store):
        entries = {(1, 2): outcome(0), (2, 1): outcome(1)}
        assert store.save_outcomes("workload", "scope", entries) == 2
        assert store.load_outcomes("workload", "scope") == entries

    def test_outcome_saves_report_only_new_entries(self, store):
        store.save_outcomes("workload", "scope", {(1, 2): outcome(0)})
        added = store.save_outcomes("workload", "scope",
                                    {(1, 2): outcome(0), (2, 1): outcome(1)})
        assert added == 1

    def test_outcomes_are_keyed_by_workload_and_scope(self, store):
        store.save_outcomes("w1", "s1", {(1, 2): outcome(0)})
        assert store.load_outcomes("w1", "s2") == {}
        assert store.load_outcomes("w2", "s1") == {}

    def test_classifications_round_trip_and_are_global(self, store):
        entry = HistoryClassification(shorthand="w1[x] c1", serializable=True,
                                      phenomena=(), committed=(1,), aborted=())
        assert store.save_classifications({"w1[x] c1": entry}) == 1
        assert store.save_classifications({"w1[x] c1": entry}) == 0
        assert store.load_classifications() == {"w1[x] c1": entry}


class TestSqlitePersistence:
    def test_data_survives_close_and_reopen(self, tmp_path):
        path = tmp_path / "c.sqlite"
        store = SqliteStore(path)
        store.open_campaign("c1", CONFIG)
        store.commit_chunk("c1", "scope", 0, [record(0)])
        store.close()

        reopened = SqliteStore(path)
        assert reopened.get_campaign("c1").config == CONFIG
        assert list(reopened.iter_records("c1", "scope")) == [record(0)]
        reopened.close()

    def test_schema_version_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "c.sqlite"
        store = SqliteStore(path)
        store._conn.execute("UPDATE meta SET value = '999' "
                            "WHERE key = 'schema_version'")
        store._conn.commit()
        store.close()
        with pytest.raises(StoreError):
            SqliteStore(path)
