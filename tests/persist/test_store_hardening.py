"""Crash-hardening of the SQLite store: busy retry, stats, schema v2, leases."""

from __future__ import annotations

import sqlite3

import pytest

from repro.persist import LeaseRecord, SqliteStore
from repro.persist.records import lease_from_row, lease_to_row

CONFIG = {"spec_name": "t", "seed": 0}


@pytest.fixture
def store(tmp_path):
    backing = SqliteStore(tmp_path / "campaign.sqlite", busy_backoff_s=0.001)
    yield backing
    backing.close()


def _failures(n):
    """A busy_fault_hook that injects n transient lock errors, then passes."""
    remaining = {"n": n}

    def hook():
        if remaining["n"] > 0:
            remaining["n"] -= 1
            return True
        return False

    return hook


def test_transient_lock_errors_are_retried_and_counted(store):
    store.busy_fault_hook = _failures(2)
    store.open_campaign("c", CONFIG)
    stats = store.stats()
    assert stats["busy_retries"] == 2
    assert stats["write_transactions"] >= 1
    assert store.get_campaign("c") is not None


def test_lock_retry_budget_is_bounded(tmp_path):
    store = SqliteStore(tmp_path / "b.sqlite", busy_retries=3,
                        busy_backoff_s=0.001)
    store.busy_fault_hook = _failures(10)       # more than the budget
    with pytest.raises(sqlite3.OperationalError):
        store.open_campaign("c", CONFIG)
    assert store.stats()["busy_retries"] == 3   # tried exactly the budget
    store.busy_fault_hook = None
    store.open_campaign("c", CONFIG)            # recovers once the storm ends
    store.close()


def test_non_lock_errors_are_not_retried(store):
    store.open_campaign("c", CONFIG)
    with pytest.raises(sqlite3.OperationalError):
        store._write(lambda cur: cur.execute("INSERT INTO nonsense VALUES (1)"))
    assert store.stats()["busy_retries"] == 0


def test_busy_timeout_pragma_applied(store):
    [(timeout,)] = store._conn.execute("PRAGMA busy_timeout").fetchall()
    assert timeout == 5000


def test_schema_v1_store_migrates_in_place(tmp_path):
    path = tmp_path / "old.sqlite"
    store = SqliteStore(path)
    store.open_campaign("c", CONFIG)
    store.close()
    # Regress the file to schema v1: no leases or certificates tables,
    # old version stamp.
    conn = sqlite3.connect(path)
    conn.execute("DROP TABLE leases")
    conn.execute("DROP TABLE certificates")
    conn.execute("UPDATE meta SET value = '1' WHERE key = 'schema_version'")
    conn.commit()
    conn.close()

    upgraded = SqliteStore(path)                # reopening migrates
    assert upgraded.load_leases("c") == {}
    assert upgraded.load_certificates("c") == ()
    upgraded.put_lease("c", LeaseRecord("S", 0, "pending", 1))
    [(version,)] = upgraded._conn.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'").fetchall()
    assert version == "3"
    assert upgraded.get_campaign("c") is not None   # old data intact
    upgraded.close()


def test_lease_rows_round_trip_through_the_codec():
    lease = LeaseRecord("SERIALIZABLE", 4, "leased", 9, owner="w1", attempts=2)
    assert lease_from_row(lease_to_row(lease)) == lease
    with pytest.raises(ValueError):
        lease_to_row(LeaseRecord("S", 0, "limbo", 1))
