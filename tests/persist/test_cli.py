"""The campaign CLI: run, resume, inspect, list — against a real SQLite file."""

from __future__ import annotations

import pytest

from repro.persist import SqliteStore
from repro.persist.cli import main

RUN = ["run", "--program-set", "increments", "--max-schedules", "120",
       "--chunk-size", "16", "--campaign", "demo"]


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "campaigns.sqlite")


def test_run_completes_and_prints_report(store_path, capsys):
    assert main(RUN + ["--store", store_path]) == 0
    out = capsys.readouterr().out
    assert "Isolation level" in out      # the coverage report table
    assert "schedules executed this run" in out

    store = SqliteStore(store_path)
    progress = store.scope_progress("demo")
    assert progress and all(state.complete for state in progress.values())
    store.close()


def test_rerun_executes_nothing(store_path, capsys):
    assert main(RUN + ["--store", store_path]) == 0
    capsys.readouterr()
    assert main(RUN + ["--store", store_path]) == 0
    assert "0 schedules executed this run" in capsys.readouterr().out


def test_resume_needs_no_workload_flags(store_path, capsys):
    assert main(RUN + ["--store", store_path]) == 0
    capsys.readouterr()
    assert main(["resume", "--store", store_path, "--campaign", "demo"]) == 0
    assert "0 schedules executed this run" in capsys.readouterr().out


def test_resume_unknown_campaign_fails(store_path):
    assert main(RUN + ["--store", store_path]) == 0
    with pytest.raises(SystemExit):
        main(["resume", "--store", store_path, "--campaign", "ghost"])


def test_inspect_and_list(store_path, capsys):
    assert main(RUN + ["--store", store_path]) == 0
    capsys.readouterr()

    assert main(["inspect", "--store", store_path, "--campaign", "demo"]) == 0
    out = capsys.readouterr().out
    assert "campaign demo" in out
    assert "complete" in out

    assert main(["inspect", "--store", store_path, "--campaign", "demo",
                 "--report"]) == 0
    assert "Isolation level" in capsys.readouterr().out

    assert main(["list", "--store", store_path]) == 0
    assert "demo: 5/5 scopes complete" in capsys.readouterr().out


def test_program_set_params_accept_json_values(store_path, capsys):
    argv = ["run", "--store", store_path, "--program-set", "increments",
            "--set", "transactions=3", "--max-schedules", "60",
            "--chunk-size", "16", "--campaign", "p3"]
    assert main(argv) == 0
    store = SqliteStore(store_path)
    config = store.get_campaign("p3").config
    assert config["spec_params"] == [["transactions", 3]]  # int, not "3"
    store.close()


def test_throttle_changes_no_records(store_path, capsys):
    assert main(RUN + ["--store", store_path]) == 0
    plain = capsys.readouterr().out
    throttled_path = store_path + ".throttled"
    assert main(RUN + ["--store", throttled_path, "--throttle-ms", "1"]) == 0
    throttled = capsys.readouterr().out
    assert plain == throttled


def test_missing_store_file_fails_cleanly(store_path, capsys):
    """resume/inspect/list on a nonexistent path must not silently create
    an empty database — and must exit nonzero with the real problem."""
    for argv in (["resume", "--store", store_path, "--campaign", "demo"],
                 ["inspect", "--store", store_path],
                 ["list", "--store", store_path]):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert "store file not found" in str(excinfo.value)
    import os
    assert not os.path.exists(store_path)       # no empty file left behind


def test_config_mismatch_exits_nonzero_without_traceback(store_path, capsys):
    assert main(RUN + ["--store", store_path]) == 0
    capsys.readouterr()
    clash = ["run", "--program-set", "increments", "--max-schedules", "99",
             "--chunk-size", "16", "--campaign", "demo",
             "--store", store_path]
    assert main(clash) == 2                     # clean exit, not a traceback
    err = capsys.readouterr().err
    assert "error:" in err and "different config" in err


def test_inspect_json_is_machine_readable(store_path, capsys):
    import json

    assert main(RUN + ["--store", store_path]) == 0
    capsys.readouterr()
    assert main(["inspect", "--store", store_path, "--campaign", "demo",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["campaign_id"] == "demo"
    assert len(payload["scopes"]) == 5
    assert all(scope["complete"] for scope in payload["scopes"])

    # Without --campaign: one entry per campaign in the store.
    assert main(["inspect", "--store", store_path, "--json"]) == 0
    listing = json.loads(capsys.readouterr().out)
    assert [entry["campaign_id"] for entry in listing] == ["demo"]

    with pytest.raises(SystemExit):
        main(["inspect", "--store", store_path, "--campaign", "ghost",
              "--json"])


def test_inspect_reports_lease_and_quarantine_state(store_path, capsys):
    """ISSUE 10 satellite: inspect surfaces the durable work-queue state.

    A campaign stalled on poisoned chunks used to summarize exactly like a
    healthy one; both the JSON and text summaries must now carry per-state
    lease counts and the quarantined chunk list.
    """
    import json

    from repro.persist.records import LeaseRecord

    assert main(RUN + ["--store", store_path]) == 0
    capsys.readouterr()

    store = SqliteStore(store_path)
    try:
        store.put_lease("demo", LeaseRecord(
            scope="READ COMMITTED", chunk_index=0, state="done", token=3,
            owner="worker-0", attempts=1))
        store.put_lease("demo", LeaseRecord(
            scope="READ COMMITTED", chunk_index=1, state="poisoned", token=5,
            owner=None, attempts=4))
        store.put_lease("demo", LeaseRecord(
            scope="SERIALIZABLE", chunk_index=0, state="leased", token=6,
            owner="worker-1", attempts=1))
    finally:
        store.close()

    assert main(["inspect", "--store", store_path, "--campaign", "demo",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["leases"]["counts"] == {
        "pending": 0, "leased": 1, "done": 1, "poisoned": 1}
    assert payload["leases"]["quarantined"] == [
        {"scope": "READ COMMITTED", "chunk_index": 1, "attempts": 4}]

    assert main(["inspect", "--store", store_path, "--campaign", "demo"]) == 0
    out = capsys.readouterr().out
    assert "chunk leases: 0 pending, 1 leased, 1 done, 1 poisoned" in out
    assert "quarantined: [READ COMMITTED] chunk #1 after 4 attempts" in out


def test_inspect_without_leases_omits_the_section(store_path, capsys):
    import json

    assert main(RUN + ["--store", store_path]) == 0
    capsys.readouterr()
    assert main(["inspect", "--store", store_path, "--campaign", "demo",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "leases" not in payload

    assert main(["inspect", "--store", store_path, "--campaign", "demo"]) == 0
    assert "chunk leases" not in capsys.readouterr().out


def test_inspect_counts_service_certificates(store_path, capsys):
    import json

    from repro.persist.records import CertificateRecord

    assert main(RUN + ["--store", store_path]) == 0
    capsys.readouterr()

    store = SqliteStore(store_path)
    try:
        store.save_certificates("demo", [
            CertificateRecord(stream="client-0", seq=0, code="P1",
                              txns=(1, 2), items=("x",), op_index=3,
                              witness="w1[x] r2[x]"),
        ])
    finally:
        store.close()

    assert main(["inspect", "--store", store_path, "--campaign", "demo",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["certificates"] == 1

    assert main(["inspect", "--store", store_path, "--campaign", "demo"]) == 0
    assert "anomaly certificates: 1" in capsys.readouterr().out
