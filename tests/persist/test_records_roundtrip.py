"""Round-trip properties of the store serialization layer.

``decode(encode(x)) == x`` exactly, and ``encode`` is a pure function — over
hypothesis-generated payloads (stalled and deadlock-aborted shapes included)
and over every record realized by exploring a contentious workload under all
five supported isolation levels.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explorer import ProgramSetSpec, explore
from repro.explorer.explorer import DEFAULT_LEVELS
from repro.explorer.memo import HistoryClassification, ScheduleOutcome
from repro.explorer.worker import ScheduleRecord
from repro.persist import records as rec

COMMON_SETTINGS = settings(max_examples=120, deadline=None)

txn_ids = st.integers(min_value=1, max_value=40)
interleavings = st.lists(txn_ids, max_size=16).map(tuple)
histories = st.text(min_size=0, max_size=60)
phenomena = st.lists(
    st.sampled_from(["P0", "P1", "P2", "P3", "P4", "P4C", "A1", "A2", "A3",
                     "A5A", "A5B"]),
    max_size=5, unique=True).map(tuple)
int_tuples = st.lists(txn_ids, max_size=6, unique=True).map(tuple)


@st.composite
def schedule_records(draw) -> ScheduleRecord:
    return ScheduleRecord(
        interleaving=draw(interleavings),
        history=draw(histories),
        serializable=draw(st.booleans()),
        phenomena=draw(phenomena),
        committed=draw(int_tuples),
        aborted=draw(int_tuples),
        blocked_events=draw(st.integers(min_value=0, max_value=1000)),
        deadlocks=draw(st.integers(min_value=0, max_value=50)),
        stalled=draw(st.booleans()),
    )


@st.composite
def schedule_outcomes(draw) -> ScheduleOutcome:
    record = draw(schedule_records())
    return ScheduleOutcome(record.history, record.serializable,
                           record.phenomena, record.committed, record.aborted,
                           record.blocked_events, record.deadlocks,
                           record.stalled)


class TestGeneratedPayloads:
    @COMMON_SETTINGS
    @given(schedule_records())
    def test_record_row_round_trips(self, record):
        row = rec.record_to_row(record)
        assert rec.record_from_row(row) == record
        assert rec.record_to_row(record) == row  # encoding is pure
        assert all(isinstance(element, (int, str)) for element in row)

    @COMMON_SETTINGS
    @given(schedule_records())
    def test_record_bytes_round_trips(self, record):
        blob = rec.record_to_bytes(record)
        assert rec.record_from_bytes(blob) == record
        assert rec.record_to_bytes(record) == blob

    @COMMON_SETTINGS
    @given(interleavings, schedule_outcomes())
    def test_outcome_row_round_trips(self, key, outcome):
        row = rec.outcome_to_row(key, outcome)
        decoded_key, decoded = rec.outcome_from_row(row)
        assert decoded_key == key
        assert decoded == outcome

    @COMMON_SETTINGS
    @given(histories, st.booleans(), phenomena, int_tuples, int_tuples)
    def test_classification_row_round_trips(self, shorthand, serializable,
                                            codes, committed, aborted):
        entry = HistoryClassification(shorthand=shorthand,
                                      serializable=serializable,
                                      phenomena=codes, committed=committed,
                                      aborted=aborted)
        decoded_key, decoded = rec.classification_from_row(
            rec.classification_to_row(shorthand, entry))
        assert decoded_key == shorthand
        assert decoded == entry

    @COMMON_SETTINGS
    @given(interleavings)
    def test_interleaving_text_round_trips(self, interleaving):
        assert rec.decode_interleaving(
            rec.encode_interleaving(interleaving)) == interleaving

    @COMMON_SETTINGS
    @given(st.dictionaries(st.text(max_size=8),
                           st.one_of(st.integers(), st.text(max_size=8),
                                     st.booleans(), st.none()),
                           max_size=6))
    def test_canonical_json_ignores_insertion_order(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert rec.canonical_json(payload) == rec.canonical_json(reordered)


class TestRealizedRecords:
    """Every record the explorer actually produces, under all five levels."""

    def test_all_levels_round_trip(self):
        result = explore(ProgramSetSpec.make("contention"),
                         levels=DEFAULT_LEVELS, max_schedules=200,
                         chunk_size=32)
        assert len(result.levels) == 5
        deadlock_aborted = 0
        for level_result in result.levels.values():
            assert level_result.records  # every level contributed
            for record in level_result.records:
                row = rec.record_to_row(record)
                assert rec.record_from_row(row) == record
                assert rec.record_from_bytes(rec.record_to_bytes(record)) \
                    == record
                if record.deadlocks and record.aborted:
                    deadlock_aborted += 1
        assert deadlock_aborted > 0  # the worst shape really was exercised

    def test_stalled_record_round_trips(self):
        # Stalls are rare in the curated workloads, so pin the shape directly.
        record = ScheduleRecord(
            interleaving=(1, 2, 2, 1), history="w1[x] w2[y] ...",
            serializable=False, phenomena=(), committed=(), aborted=(1, 2),
            blocked_events=4, deadlocks=0, stalled=True)
        assert rec.record_from_row(rec.record_to_row(record)) == record
