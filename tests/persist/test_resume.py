"""Kill-and-resume determinism and cross-run dedupe — the tentpole contract.

A campaign interrupted at any commit boundary and resumed must produce a
result byte-identical to the uninterrupted run (fingerprint AND rendered
coverage report), and re-running a completed campaign must execute nothing.
"""

from __future__ import annotations

import pytest

from repro.analysis.coverage import (
    build_coverage_report,
    coverage_report_from_store,
)
from repro.explorer import ProgramSetSpec, explore
from repro.persist import InMemoryStore


class Interrupted(RuntimeError):
    """Stands in for a SIGKILL: raised mid-campaign, after N durable commits."""


class InterruptingStore:
    """Proxy that dies after ``fail_after`` chunk commits have gone durable."""

    def __init__(self, inner, fail_after: int):
        self._inner = inner
        self._left = fail_after

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name != "commit_chunk":
            return attr

        def commit_chunk(*args, **kwargs):
            if self._left <= 0:
                raise Interrupted()
            self._left -= 1
            return attr(*args, **kwargs)

        return commit_chunk


SPEC = ProgramSetSpec.make("increments")
EXPLORE_KWARGS = dict(max_schedules=200, chunk_size=8)


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted, store-less result every variant must reproduce."""
    return {
        reduction: explore(SPEC, reduction=reduction, **EXPLORE_KWARGS)
        for reduction in ("none", "sleep-set")
    }


class TestStoreTransparency:
    @pytest.mark.parametrize("reduction", ["none", "sleep-set"])
    def test_store_backed_run_matches_plain_run(self, store, baseline, reduction):
        result = explore(SPEC, reduction=reduction, store=store,
                         campaign_id="c1", **EXPLORE_KWARGS)
        assert result.fingerprint() == baseline[reduction].fingerprint()

    def test_store_backed_report_renders_identically(self, store, baseline):
        explore(SPEC, store=store, campaign_id="c1", **EXPLORE_KWARGS)
        live = build_coverage_report(baseline["none"]).render()
        stored = coverage_report_from_store(store, "c1").render()
        assert stored == live

    def test_campaign_id_requires_a_store(self):
        with pytest.raises(ValueError):
            explore(SPEC, campaign_id="c1", **EXPLORE_KWARGS)


class TestKillAndResume:
    @pytest.mark.parametrize("reduction", ["none", "sleep-set"])
    @pytest.mark.parametrize("fail_after", [0, 1, 3, 7])
    def test_resume_is_byte_identical(self, store, baseline, reduction, fail_after):
        with pytest.raises(Interrupted):
            explore(SPEC, reduction=reduction,
                    store=InterruptingStore(store, fail_after),
                    campaign_id="c1", **EXPLORE_KWARGS)
        resumed = explore(SPEC, reduction=reduction, store=store,
                          campaign_id="c1", **EXPLORE_KWARGS)
        expected = baseline[reduction]
        assert resumed.fingerprint() == expected.fingerprint()
        assert (coverage_report_from_store(store, "c1").render()
                == build_coverage_report(expected).render())

    def test_resume_executes_only_the_remainder(self, store):
        with pytest.raises(Interrupted):
            explore(SPEC, store=InterruptingStore(store, 3),
                    campaign_id="c1", **EXPLORE_KWARGS)
        resumed = explore(SPEC, store=store, campaign_id="c1", **EXPLORE_KWARGS)
        loaded = sum(level.cache_stats.get("store_chunks_loaded", 0)
                     for level in resumed.levels.values())
        committed = sum(level.cache_stats.get("store_chunks_committed", 0)
                        for level in resumed.levels.values())
        assert loaded == 3          # exactly the durable prefix was reused
        assert committed > 0        # and the remainder was executed and saved
        progress = store.scope_progress("c1")
        assert all(state.complete for state in progress.values())

    def test_double_interruption_still_converges(self, store, baseline):
        for fail_after in (1, 1):
            with pytest.raises(Interrupted):
                explore(SPEC, store=InterruptingStore(store, fail_after),
                        campaign_id="c1", **EXPLORE_KWARGS)
        resumed = explore(SPEC, store=store, campaign_id="c1", **EXPLORE_KWARGS)
        assert resumed.fingerprint() == baseline["none"].fingerprint()


class TestCrossRunDedupe:
    def test_rerun_of_complete_campaign_executes_nothing(self, store, baseline):
        first = explore(SPEC, store=store, campaign_id="c1", **EXPLORE_KWARGS)
        rerun = explore(SPEC, store=store, campaign_id="c1", **EXPLORE_KWARGS)
        assert rerun.executed_schedules() == 0
        assert rerun.fingerprint() == first.fingerprint()
        assert rerun.fingerprint() == baseline["none"].fingerprint()

    def test_fresh_campaign_reuses_stored_outcome_memo(self, store):
        # Hermetic: the process-global memo would otherwise supply every hit
        # itself, leaving the store with nothing to prove.
        from repro.explorer.worker import _OUTCOME_MEMO_CACHE
        _OUTCOME_MEMO_CACHE.clear()
        explore(SPEC, store=store, campaign_id="c1", **EXPLORE_KWARGS)
        assert store.load_classifications()
        _OUTCOME_MEMO_CACHE.clear()
        second = explore(SPEC, store=store, campaign_id="c2", **EXPLORE_KWARGS)
        stats = second.levels[next(iter(second.levels))].cache_stats
        assert stats.get("store_classifications_preloaded", 0) > 0
        assert stats.get("store_outcomes_preloaded", 0) > 0

    def test_cross_workload_classification_dedupe(self, store):
        from repro.explorer.worker import _OUTCOME_MEMO_CACHE
        _OUTCOME_MEMO_CACHE.clear()
        explore(SPEC, store=store, campaign_id="c1", **EXPLORE_KWARGS)
        stored = set(store.load_classifications())
        assert stored
        other = ProgramSetSpec.make("contention")
        _OUTCOME_MEMO_CACHE.clear()
        result = explore(other, store=store, campaign_id="c2", **EXPLORE_KWARGS)
        stats = result.levels[next(iter(result.levels))].cache_stats
        # classifications are keyed by history shorthand, not workload, so a
        # different workload still preloads everything the first one learned
        assert stats.get("store_classifications_preloaded", 0) >= len(stored)

    def test_different_config_same_campaign_is_refused(self, store):
        from repro.persist import CampaignConfigMismatch
        explore(SPEC, store=store, campaign_id="c1", **EXPLORE_KWARGS)
        with pytest.raises(CampaignConfigMismatch):
            explore(SPEC, store=store, campaign_id="c1", seed=5,
                    **EXPLORE_KWARGS)


class TestParallelCampaigns:
    def test_parallel_run_matches_and_dedupes(self, baseline):
        store = InMemoryStore()
        first = explore(SPEC, workers=2, store=store, campaign_id="par",
                        **EXPLORE_KWARGS)
        assert first.fingerprint() == baseline["none"].fingerprint()
        rerun = explore(SPEC, workers=2, store=store, campaign_id="par",
                        **EXPLORE_KWARGS)
        assert rerun.executed_schedules() == 0
        assert rerun.fingerprint() == first.fingerprint()

    def test_serial_resume_of_parallel_campaign(self, baseline):
        store = InMemoryStore()
        with pytest.raises(Interrupted):
            explore(SPEC, workers=2, store=InterruptingStore(store, 2),
                    campaign_id="par", **EXPLORE_KWARGS)
        resumed = explore(SPEC, workers=1, store=store, campaign_id="par",
                          **EXPLORE_KWARGS)
        assert resumed.fingerprint() == baseline["none"].fingerprint()
