"""Table 4 as a resumable campaign: per-cell commits, skips, and rebuilds."""

from __future__ import annotations

import pytest

from repro.analysis.matrix import (
    TABLE_4_LEVELS,
    compute_table4_explored,
    table4_explored_from_store,
)
from repro.persist import CampaignConfigMismatch
from repro.persist.store import StoreError
from repro.workloads.scenarios import ALL_SCENARIOS

LEVELS = TABLE_4_LEVELS[:2]
SCENARIOS = ALL_SCENARIOS[:3]
KWARGS = dict(max_schedules=300)


class CellCounter:
    """Store proxy counting cell writes (how many cells actually executed)."""

    def __init__(self, inner):
        self._inner = inner
        self.saved = 0

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name != "save_table4_cell":
            return attr

        def save_table4_cell(*args, **kwargs):
            self.saved += 1
            return attr(*args, **kwargs)

        return save_table4_cell


class Interrupted(RuntimeError):
    pass


class InterruptingStore:
    def __init__(self, inner, fail_after: int):
        self._inner = inner
        self._left = fail_after

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name != "save_table4_cell":
            return attr

        def save_table4_cell(*args, **kwargs):
            if self._left <= 0:
                raise Interrupted()
            self._left -= 1
            return attr(*args, **kwargs)

        return save_table4_cell


def test_store_backed_matrix_matches_plain(store):
    plain = compute_table4_explored(LEVELS, SCENARIOS, **KWARGS)
    stored = compute_table4_explored(LEVELS, SCENARIOS, store=store, **KWARGS)
    assert stored == plain


def test_rerun_executes_no_cells(store):
    compute_table4_explored(LEVELS, SCENARIOS, store=store, **KWARGS)
    counter = CellCounter(store)
    rerun = compute_table4_explored(LEVELS, SCENARIOS, store=counter, **KWARGS)
    assert counter.saved == 0
    assert rerun == compute_table4_explored(LEVELS, SCENARIOS, **KWARGS)


def test_interrupted_matrix_resumes_with_only_missing_cells(store):
    with pytest.raises(Interrupted):
        compute_table4_explored(LEVELS, SCENARIOS,
                                store=InterruptingStore(store, 2), **KWARGS)
    counter = CellCounter(store)
    resumed = compute_table4_explored(LEVELS, SCENARIOS, store=counter,
                                      **KWARGS)
    assert counter.saved == len(LEVELS) * len(SCENARIOS) - 2
    assert resumed == compute_table4_explored(LEVELS, SCENARIOS, **KWARGS)


def test_rebuild_from_store(store):
    computed = compute_table4_explored(LEVELS, SCENARIOS, store=store,
                                       campaign_id="t4", **KWARGS)
    assert table4_explored_from_store(store, "t4") == computed


def test_rebuild_of_unfinished_campaign_is_an_error(store):
    with pytest.raises(Interrupted):
        compute_table4_explored(LEVELS, SCENARIOS, campaign_id="t4",
                                store=InterruptingStore(store, 1), **KWARGS)
    with pytest.raises(StoreError):
        table4_explored_from_store(store, "t4")


def test_config_mismatch_is_refused(store):
    compute_table4_explored(LEVELS, SCENARIOS, campaign_id="t4", store=store,
                            **KWARGS)
    with pytest.raises(CampaignConfigMismatch):
        compute_table4_explored(LEVELS, SCENARIOS, campaign_id="t4",
                                store=store, max_schedules=301)


def test_campaign_id_requires_a_store():
    with pytest.raises(ValueError):
        compute_table4_explored(LEVELS, SCENARIOS, campaign_id="t4", **KWARGS)


def test_rebuild_rejects_exploration_campaigns(store):
    from repro.explorer import ProgramSetSpec, explore
    explore(ProgramSetSpec.make("increments"), max_schedules=60,
            store=store, campaign_id="exp")
    with pytest.raises(StoreError):
        table4_explored_from_store(store, "exp")
