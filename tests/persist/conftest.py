"""Shared fixtures: both store backends behind one parametrized fixture."""

from __future__ import annotations

import pytest

from repro.persist import InMemoryStore, SqliteStore


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    """One of each backend; every test in this package runs against both."""
    if request.param == "memory":
        backing = InMemoryStore()
    else:
        backing = SqliteStore(tmp_path / "campaign.sqlite")
    yield backing
    backing.close()
