"""SQL analytics agreement: InMemoryStore's python mirrors vs SqliteStore's SQL.

The same campaign data must yield identical anomaly-frequency series,
witness lookups, and conflict-edge rankings from both backends — window
functions and ``json_each`` on one side, plain python on the other.
"""

from __future__ import annotations

import pytest

from repro.explorer import ProgramSetSpec, explore
from repro.explorer.worker import ScheduleRecord
from repro.persist import InMemoryStore, SqliteStore
from repro.persist.analytics import campaign_summary, persist_result

CONFIG = {"spec_name": "increments", "spec_params": [], "mode": "auto",
          "max_schedules": 100, "seed": 0, "reduction": "none",
          "chunk_size": 4}


def record(index: int, codes=()) -> ScheduleRecord:
    return ScheduleRecord(
        interleaving=(1, 2, index), history=f"h{index}",
        serializable=not codes, phenomena=tuple(codes), committed=(1, 2),
        aborted=(), blocked_events=0, deadlocks=0, stalled=False)


@pytest.fixture
def both_stores(tmp_path):
    memory = InMemoryStore()
    sqlite = SqliteStore(tmp_path / "c.sqlite")
    yield memory, sqlite
    memory.close()
    sqlite.close()


def fill(store) -> None:
    store.open_campaign("c1", CONFIG)
    store.commit_chunk("c1", "scope", 0,
                       [record(0), record(1, ["P1"]), record(2, ["P1", "P2"])])
    store.commit_chunk("c1", "scope", 1, [record(3), record(4, ["P2"])])
    store.commit_chunk("c1", "scope", 2, [record(5, ["P1"])])
    # edges chosen to force a count tie: rw and ww both appear twice
    store.save_witness_edges("c1", [
        ("scope", "P1", 1, 2, "rw", "x"),
        ("scope", "P1", 2, 1, "rw", None),
        ("scope", "P2", 1, 2, "ww", "x"),
        ("scope", "P2", 2, 1, "ww", "y"),
        ("scope", "P2", 1, 2, "wr", "x"),
    ])


class TestBackendAgreement:
    def test_anomaly_frequency_agrees(self, both_stores):
        for store in both_stores:
            fill(store)
        memory, sqlite = both_stores
        for code in ("P1", "P2", "P9"):
            assert (memory.anomaly_frequency("c1", "scope", code)
                    == sqlite.anomaly_frequency("c1", "scope", code))

    def test_witness_for_agrees(self, both_stores):
        for store in both_stores:
            fill(store)
        memory, sqlite = both_stores
        for code in ("P1", "P2", "P9"):
            assert (memory.witness_for("c1", "scope", code)
                    == sqlite.witness_for("c1", "scope", code))

    def test_conflict_edges_agree_including_tied_ranks(self, both_stores):
        for store in both_stores:
            fill(store)
        memory, sqlite = both_stores
        rows = memory.conflict_edge_summary("c1")
        assert rows == sqlite.conflict_edge_summary("c1")
        by_kind = {row.kind: row for row in rows}
        assert by_kind["rw"].rank == by_kind["ww"].rank == 1  # shared rank
        assert by_kind["wr"].rank == 3                        # RANK skips 2


class TestFrequencySemantics:
    def test_cumulative_is_a_running_total_over_chunks(self, both_stores):
        for store in both_stores:
            fill(store)
        memory, _ = both_stores
        series = memory.anomaly_frequency("c1", "scope", "P1")
        assert [(row.chunk_index, row.schedules, row.witnessed, row.cumulative)
                for row in series] == [(0, 3, 2, 2), (1, 2, 0, 2), (2, 1, 1, 3)]

    def test_witness_is_the_earliest_schedule(self, both_stores):
        for store in both_stores:
            fill(store)
        memory, sqlite = both_stores
        for store in (memory, sqlite):
            witness = store.witness_for("c1", "scope", "P2")
            assert witness.schedule_index == 2
            assert witness.interleaving == (1, 2, 2)
            assert witness.history == "h2"

    def test_unknown_code_yields_empty_series_and_no_witness(self, both_stores):
        for store in both_stores:
            fill(store)
        for store in both_stores:
            series = store.anomaly_frequency("c1", "scope", "P9")
            assert all(row.witnessed == 0 for row in series)
            assert store.witness_for("c1", "scope", "P9") is None


class TestEndToEndAnalytics:
    """The full path: explore → persist_result → query, on both backends."""

    def test_campaign_summaries_agree(self, both_stores):
        spec = ProgramSetSpec.make("increments")
        summaries = []
        for store in both_stores:
            result = explore(spec, max_schedules=120, chunk_size=8,
                             store=store, campaign_id="c1")
            persist_result(store, "c1", result)
            summary = campaign_summary(store, "c1")
            summaries.append(summary.replace(store.description(), "<store>"))
        assert summaries[0] == summaries[1]
        assert "witness conflict edges" in summaries[0]

    def test_summary_of_missing_campaign(self, both_stores):
        for store in both_stores:
            assert "not found" in campaign_summary(store, "ghost")
