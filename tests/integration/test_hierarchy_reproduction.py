"""Integration test: Figure 2 and the paper's ordering remarks.

Every ``lower « higher`` edge of Figure 2 must come out WEAKER when the two
engines' variant-manifestation profiles are compared, and every numbered
remark (1, 7, 8, 9, 10) must hold — including the incomparability of
REPEATABLE READ and Snapshot Isolation (Remark 9).
"""

from __future__ import annotations

import pytest

from repro.analysis.hierarchy_check import (
    level_profiles,
    profile_relation,
    verify_figure2_edges,
    verify_remarks,
)
from repro.core.hierarchy import FIGURE_2_EDGES, Relation
from repro.core.isolation import IsolationLevelName


@pytest.fixture(scope="module")
def profiles():
    levels = sorted(
        {edge.lower for edge in FIGURE_2_EDGES} | {edge.higher for edge in FIGURE_2_EDGES},
        key=lambda level: level.value,
    )
    return level_profiles(levels)


def test_every_figure2_edge_holds(profiles):
    checks = verify_figure2_edges(profiles)
    failing = [check for check in checks if not check.holds]
    assert not failing, [
        (check.edge.lower.value, check.edge.higher.value, check.observed.value)
        for check in failing
    ]


def test_edges_are_strict_not_equivalences(profiles):
    for check in verify_figure2_edges(profiles):
        assert check.lower_only, (
            f"{check.edge.lower.value} should admit something "
            f"{check.edge.higher.value} forbids"
        )


def test_remark9_repeatable_read_incomparable_with_snapshot(profiles):
    rr = profiles[IsolationLevelName.REPEATABLE_READ]
    si = profiles[IsolationLevelName.SNAPSHOT_ISOLATION]
    assert profile_relation(rr, si) is Relation.INCOMPARABLE
    # The differentiators are exactly the ones the paper names: phantoms for
    # REPEATABLE READ, write skew for Snapshot Isolation.
    assert any(code == "P3" for code, _ in rr - si)
    assert any(code == "A5B" for code, _ in si - rr)


def test_all_numbered_remarks_hold():
    checks = verify_remarks()
    failing = [check.describe() for check in checks if not check.holds]
    assert not failing, failing


def test_remark8_snapshot_is_strictly_stronger_than_read_committed(profiles):
    rc = profiles[IsolationLevelName.READ_COMMITTED]
    si = profiles[IsolationLevelName.SNAPSHOT_ISOLATION]
    assert profile_relation(rc, si) is Relation.WEAKER
    assert si < rc
