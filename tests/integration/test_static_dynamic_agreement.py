"""The static/dynamic cross-validation gate.

Two directions, both load-bearing for the soundness contract of
``repro.static_analysis``:

* **No false impossibility** — a (variant, level) scope the analyzer calls
  ``IMPOSSIBLE`` must never manifest its anomaly in the *exhaustively
  explored* schedule space.  One dynamic witness inside a statically-pruned
  scope would mean the pruning silently corrupts Table 4.
* **No lost witnesses** — every cell the paper's Table 4 (and our extension
  rows) marks possible must have at least one variant the analyzer leaves
  unpruned (``POSSIBLE`` or ``UNKNOWN``), so the explorer still gets to find
  the witness.

The gate also pins the headline end-to-end property: the explored Table 4
with static pruning enabled reproduces ``EXPECTED_TABLE_4`` exactly, while
actually skipping a substantial share of the variant spaces.
"""

from __future__ import annotations

from repro.analysis.matrix import (
    EXPECTED_TABLE_4,
    EXTENSION_EXPECTATIONS,
    TABLE_4_LEVELS,
    compute_table4_explored,
)
from repro.core.isolation import IsolationLevelName, Possibility
from repro.explorer.scenarios import explore_scenario
from repro.static_analysis import Verdict, analyze_scenario_programs
from repro.workloads.scenarios import ALL_SCENARIOS, scenario_by_code

EXTENSION_LEVELS = (IsolationLevelName.DEGREE_0,
                    IsolationLevelName.ORACLE_READ_CONSISTENCY)
ALL_EXPECTATIONS = {**EXPECTED_TABLE_4, **EXTENSION_EXPECTATIONS}
ALL_LEVELS = tuple(TABLE_4_LEVELS) + EXTENSION_LEVELS


def _static_verdict(scenario_code, variant, level):
    return analyze_scenario_programs(variant.build_programs(), scenario_code,
                                     level)


class TestNoFalseImpossibility:
    def test_impossible_scopes_never_manifest_dynamically(self):
        """Exhaustively explore every statically-IMPOSSIBLE scope: 0 witnesses.

        This is the expensive direction done honestly: the unpruned explorer
        covers the *whole* interleaving space of each scope the analyzer
        claims impossible, so a single manifesting schedule anywhere would
        fail the gate.
        """
        checked = 0
        for level in ALL_LEVELS:
            for scenario in ALL_SCENARIOS:
                verdicts = {
                    variant.name: _static_verdict(scenario.code, variant, level)
                    for variant in scenario.variants
                }
                if not any(v.verdict is Verdict.IMPOSSIBLE
                           for v in verdicts.values()):
                    continue
                exploration = explore_scenario(scenario, level)
                for explored in exploration.variants:
                    verdict = verdicts[explored.variant_name]
                    if verdict.verdict is not Verdict.IMPOSSIBLE:
                        continue
                    checked += 1
                    assert explored.manifested == 0, (
                        f"{scenario.code}/{explored.variant_name} at "
                        f"{level.value}: statically impossible "
                        f"({verdict.reason}) but dynamically witnessed")
        # The gate must actually exercise a large set of scopes, or a
        # regression that stops producing IMPOSSIBLE verdicts would pass
        # vacuously.
        assert checked >= 30

    def test_witnessed_cells_are_statically_reachable(self):
        """Every expected-possible cell keeps at least one unpruned variant."""
        for level, row in ALL_EXPECTATIONS.items():
            for code, expected in row.items():
                if expected is Possibility.NOT_POSSIBLE:
                    continue
                scenario = scenario_by_code(code)
                verdicts = [
                    _static_verdict(code, variant, level)
                    for variant in scenario.variants
                ]
                unpruned = [v for v in verdicts
                            if v.verdict is not Verdict.IMPOSSIBLE]
                assert unpruned, (
                    f"{code} at {level.value}: expected {expected} but every "
                    f"variant is statically pruned")
                if expected is Possibility.POSSIBLE:
                    # POSSIBLE means *every* variant manifests, so none may
                    # be pruned.
                    assert len(unpruned) == len(verdicts), (
                        f"{code} at {level.value}: expected POSSIBLE but some "
                        f"variant is statically pruned")


class TestPrunedTable4:
    def test_pruned_table_reproduces_the_paper_and_skips_work(self):
        pruned = compute_table4_explored(static_pruning=True)
        assert pruned.possibilities() == EXPECTED_TABLE_4
        assert pruned.static_pruning
        assert pruned.total_pruned_variants() > 0
        # Pruned scopes execute nothing, so the pruned table must cover
        # strictly fewer schedules than the seed's full count.
        assert pruned.total_schedules() < 1367 * len(TABLE_4_LEVELS)
        # Pruned cells surface their static proof sketches.
        rendered = pruned.render()
        assert "statically impossible" in rendered
        for row in pruned.cells.values():
            for cell in row.values():
                if cell.pruned_variants:
                    assert len(cell.static_reasons) == cell.pruned_variants
                    assert all(reason for _, reason in cell.static_reasons)
