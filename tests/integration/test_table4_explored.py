"""Integration test: explorer-driven Table 4.

The headline strengthening of the reproduction: instead of replaying one
curated adversarial interleaving per cell, every scenario variant's *entire*
interleaving space is executed under every Table 4 level, and the aggregated
manifestation sets must reproduce the paper's printed table cell for cell —
now with a measured manifestation frequency and a replayable witness
interleaving behind every Possible / Sometimes Possible cell, and with the
stalled and deadlocked schedules that arbitrary interleavings inevitably
produce under locking engines handled as first-class non-manifesting results
(no ``RuntimeError`` anywhere in the run).

``TABLE4_EXPLORE_BUDGET`` caps the per-variant schedule budget (default
covers every curated variant space exhaustively; the CI smoke job sets it
explicitly).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.coverage import ExploredTable4
from repro.analysis.matrix import (
    EXPECTED_TABLE_4,
    TABLE_4_COLUMNS,
    TABLE_4_LEVELS,
    compute_table4_explored,
)
from repro.analysis.report import render_comparison
from repro.core.isolation import Possibility
from repro.testbed import engine_factory
from repro.workloads.scenarios import run_variant, scenario_by_code

BUDGET = int(os.environ.get("TABLE4_EXPLORE_BUDGET", "2000"))

#: The largest curated variant space (A5B through cursors) has 924
#: interleavings; at or above that every space is enumerated exhaustively and
#: the matrix *must* equal the paper's.  Below it, spaces switch to seeded
#: sampling, which can miss a cell's only witnesses — the strict cell-for-cell
#: assertion would then fail spuriously, so it only runs when exhaustive.
EXHAUSTIVE = BUDGET >= 924


@pytest.fixture(scope="module")
def explored() -> ExploredTable4:
    return compute_table4_explored(max_schedules=BUDGET)


def test_explored_matrix_matches_the_paper_cell_for_cell(explored):
    if not EXHAUSTIVE:
        pytest.skip(f"budget {BUDGET} < 924 samples the larger spaces; "
                    f"cell-for-cell equality is only guaranteed exhaustively")
    measured = explored.possibilities()
    assert measured == EXPECTED_TABLE_4, render_comparison(
        EXPECTED_TABLE_4, measured, TABLE_4_COLUMNS)


def test_every_witnessed_cell_records_a_witness_interleaving(explored):
    for level in TABLE_4_LEVELS:
        for code in TABLE_4_COLUMNS:
            cell = explored.cell(level, code)
            if cell.possibility is Possibility.NOT_POSSIBLE:
                assert cell.witness is None
                assert cell.manifested == 0
            else:
                assert cell.witness is not None, (
                    f"{level.value}/{code} is {cell.possibility} without a "
                    f"witness interleaving")
                assert cell.manifested > 0
                assert 0.0 < cell.frequency <= 1.0


def test_witness_interleavings_replay_to_manifestation(explored):
    """Every recorded witness is a genuine, independently replayable exhibit.

    Under sleep-set reduction a witness may be a non-representative member of
    its equivalence class, so replaying it through ``run_variant`` also
    empirically re-checks reduction soundness on exactly the schedules the
    table's claims rest on.
    """
    for level in TABLE_4_LEVELS:
        factory = engine_factory(level)
        for code in TABLE_4_COLUMNS:
            witness = explored.witness(level, code)
            if witness is None:
                continue
            variant_name, interleaving, _history = witness
            variant = scenario_by_code(code).variant(variant_name)
            replay = run_variant(variant, factory, code,
                                 interleaving=interleaving)
            assert replay.manifested, (
                f"witness for {level.value}/{code} ({variant_name}, "
                f"{interleaving}) does not manifest on replay")
            assert not replay.stalled


def test_exploration_covers_the_full_curated_spaces(explored):
    """With the default budget every variant space is explored exhaustively."""
    if not EXHAUSTIVE:
        pytest.skip("sampled smoke budget; exhaustiveness not expected")
    for level in TABLE_4_LEVELS:
        for code in TABLE_4_COLUMNS:
            cell = explored.cell(level, code)
            assert cell.schedules > 0
    # The curated scenario spaces total 1367 schedules per level.
    assert explored.total_schedules() == 1367 * len(TABLE_4_LEVELS)
