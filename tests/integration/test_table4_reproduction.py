"""Integration test: the full Table 4 reproduction.

This is the headline result: running every anomaly scenario against every
engine must reproduce the paper's Table 4 cell for cell, and the two extension
rows (Degree 0, Oracle Read Consistency) must match our documented
expectations.
"""

from __future__ import annotations

import pytest

from repro.analysis.matrix import (
    EXPECTED_TABLE_4,
    EXTENSION_EXPECTATIONS,
    TABLE_4_COLUMNS,
    TABLE_4_LEVELS,
    compute_table4_row,
)
from repro.analysis.report import matrix_matches, render_comparison
from repro.testbed import engine_factory


@pytest.mark.parametrize("level", TABLE_4_LEVELS, ids=lambda level: level.value)
def test_table4_row_matches_the_paper(level):
    measured = compute_table4_row(engine_factory(level))
    expected = EXPECTED_TABLE_4[level]
    assert measured == expected, render_comparison(
        {level: expected}, {level: measured}, TABLE_4_COLUMNS)


@pytest.mark.parametrize("level", sorted(EXTENSION_EXPECTATIONS, key=lambda lvl: lvl.value),
                         ids=lambda level: level.value)
def test_extension_rows_match_their_documented_expectations(level):
    measured = compute_table4_row(engine_factory(level))
    assert measured == EXTENSION_EXPECTATIONS[level]


def test_full_matrix_has_no_mismatches():
    measured = {
        level: compute_table4_row(engine_factory(level)) for level in TABLE_4_LEVELS
    }
    ok, mismatches = matrix_matches(EXPECTED_TABLE_4, measured)
    assert ok, "\n".join(mismatches)
