"""Integration tests: the paper's concrete histories, replayed on the engines.

Each test takes one of the paper's worked examples and checks that the engines
do to it exactly what the paper says they would: the locking SERIALIZABLE
scheduler prevents the H1 inconsistent analysis, Snapshot Isolation turns H1
into the serializable H1.SI dataflow, the H4 lost update dies by deadlock
under REPEATABLE READ and by first-committer-wins under SI, and so on.
"""

from __future__ import annotations


from repro.core.dependency import is_serializable
from repro.core.isolation import IsolationLevelName
from repro.core.phenomena import P1_DIRTY_READ, P4_LOST_UPDATE
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from repro.engine.scheduler import ScheduleRunner
from repro.storage.database import Database
from repro.testbed import make_engine


def _bank() -> Database:
    database = Database()
    database.set_item("x", 50)
    database.set_item("y", 50)
    return database


def _h1_programs():
    """T1 transfers 40 from x to y; T2 audits both balances."""
    return [
        TransactionProgram(1, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] - 40),
            ReadItem("y"),
            WriteItem("y", lambda ctx: ctx["y"] + 40),
            Commit(),
        ]),
        TransactionProgram(2, [
            ReadItem("x", into="seen_x"),
            ReadItem("y", into="seen_y"),
            Commit(),
        ]),
    ]


H1_INTERLEAVING = [1, 1, 2, 2, 2, 1, 1, 1]


class TestH1InconsistentAnalysis:
    def test_read_uncommitted_reproduces_h1(self):
        engine = make_engine(_bank(), IsolationLevelName.READ_UNCOMMITTED)
        outcome = ScheduleRunner(engine, _h1_programs(), H1_INTERLEAVING).run()
        assert outcome.observed(2, "seen_x") + outcome.observed(2, "seen_y") == 60
        assert P1_DIRTY_READ.occurs_in(outcome.history)
        assert not is_serializable(outcome.history)

    def test_locking_serializable_prevents_the_anomaly(self):
        engine = make_engine(_bank(), IsolationLevelName.SERIALIZABLE)
        outcome = ScheduleRunner(engine, _h1_programs(), H1_INTERLEAVING).run()
        assert outcome.observed(2, "seen_x") + outcome.observed(2, "seen_y") == 100
        assert is_serializable(outcome.history)

    def test_snapshot_isolation_gives_the_h1si_dataflow(self):
        """Under SI the audit reads the old committed versions (x0, y0): the
        total is 100 and the realized history is serializable — the paper's
        H1.SI observation."""
        engine = make_engine(_bank(), IsolationLevelName.SNAPSHOT_ISOLATION)
        outcome = ScheduleRunner(engine, _h1_programs(), H1_INTERLEAVING).run()
        assert outcome.observed(2, "seen_x") == 50
        assert outcome.observed(2, "seen_y") == 50
        assert outcome.all_committed(1, 2)
        # The audit's reads carry version 0 — the snapshot of the initial state.
        audit_reads = [op for op in outcome.history if op.txn == 2 and op.is_read]
        assert all(op.version == 0 for op in audit_reads)


class TestH4LostUpdate:
    def _programs(self):
        return [
            TransactionProgram(1, [
                ReadItem("x"), WriteItem("x", lambda ctx: ctx["x"] + 30), Commit(),
            ]),
            TransactionProgram(2, [
                ReadItem("x"), WriteItem("x", lambda ctx: ctx["x"] + 20), Commit(),
            ]),
        ]

    def _database(self):
        database = Database()
        database.set_item("x", 100)
        return database

    INTERLEAVING = [1, 2, 2, 2, 1, 1]

    def test_read_committed_loses_an_update(self):
        engine = make_engine(self._database(), IsolationLevelName.READ_COMMITTED)
        outcome = ScheduleRunner(engine, self._programs(), self.INTERLEAVING).run()
        assert outcome.all_committed(1, 2)
        assert outcome.database.get_item("x") == 130
        assert P4_LOST_UPDATE.occurs_in(outcome.history)

    def test_repeatable_read_resolves_it_by_deadlock(self):
        engine = make_engine(self._database(), IsolationLevelName.REPEATABLE_READ)
        outcome = ScheduleRunner(engine, self._programs(), self.INTERLEAVING).run()
        assert outcome.deadlocked()
        assert outcome.database.get_item("x") in (120, 130)
        assert not P4_LOST_UPDATE.occurs_in(outcome.history)

    def test_snapshot_isolation_resolves_it_by_first_committer_wins(self):
        engine = make_engine(self._database(), IsolationLevelName.SNAPSHOT_ISOLATION)
        outcome = ScheduleRunner(engine, self._programs(), self.INTERLEAVING).run()
        assert outcome.committed(2) and outcome.aborted(1)
        assert outcome.database.get_item("x") == 120
        assert engine.fcw_aborts == 1


class TestH5WriteSkew:
    def _programs(self):
        return [
            TransactionProgram(1, [
                ReadItem("x"), ReadItem("y"), WriteItem("y", -40), Commit(),
            ]),
            TransactionProgram(2, [
                ReadItem("x"), ReadItem("y"), WriteItem("x", -40), Commit(),
            ]),
        ]

    INTERLEAVING = [1, 1, 2, 2, 1, 2, 1, 2]

    def test_snapshot_isolation_admits_write_skew(self):
        engine = make_engine(_bank(), IsolationLevelName.SNAPSHOT_ISOLATION)
        outcome = ScheduleRunner(engine, self._programs(), self.INTERLEAVING).run()
        assert outcome.all_committed(1, 2)
        assert outcome.database.get_item("x") + outcome.database.get_item("y") == -80

    def test_repeatable_read_prevents_it(self):
        engine = make_engine(_bank(), IsolationLevelName.REPEATABLE_READ)
        outcome = ScheduleRunner(engine, self._programs(), self.INTERLEAVING).run()
        assert outcome.database.get_item("x") + outcome.database.get_item("y") >= 0

    def test_locking_serializable_prevents_it(self):
        engine = make_engine(_bank(), IsolationLevelName.SERIALIZABLE)
        outcome = ScheduleRunner(engine, self._programs(), self.INTERLEAVING).run()
        assert outcome.database.get_item("x") + outcome.database.get_item("y") >= 0


class TestDirtyWriteConstraintExample:
    def test_degree0_breaks_the_constraint_and_degree1_does_not(self):
        programs = [
            TransactionProgram(1, [WriteItem("x", 1), WriteItem("y", 1), Commit()]),
            TransactionProgram(2, [WriteItem("x", 2), WriteItem("y", 2), Commit()]),
        ]
        interleaving = [1, 2, 2, 2, 1, 1]

        def run(level):
            database = Database()
            database.set_item("x", 0)
            database.set_item("y", 0)
            engine = make_engine(database, level)
            return ScheduleRunner(engine, [
                TransactionProgram(p.txn, list(p.steps)) for p in programs
            ], interleaving).run()

        degree0 = run(IsolationLevelName.DEGREE_0)
        assert degree0.database.get_item("x") != degree0.database.get_item("y")

        degree1 = run(IsolationLevelName.READ_UNCOMMITTED)
        assert degree1.database.get_item("x") == degree1.database.get_item("y")
