"""Certificate codec + store round-trips, and the repolint invariant."""

from __future__ import annotations

import pytest

from repro.persist import (
    CertificateRecord,
    InMemoryStore,
    SqliteStore,
    StoreError,
)
from repro.persist.records import (
    CERTIFICATE_CODES,
    certificate_from_row,
    certificate_to_row,
)
from repro.static_analysis.repolint import lint_certificate_records

_FIXTURE = CertificateRecord(stream="client-3", seq=2, code="A5B",
                             txns=(7, 9), items=("x", "y"), op_index=41,
                             witness="r7[x] w9[x] r9[y] w7[y] c9 c7")


class TestCodec:
    def test_round_trip_every_code(self):
        for index, code in enumerate(CERTIFICATE_CODES):
            certificate = CertificateRecord("s", index, code, (1, 2), ("x",),
                                            index, "r1[x]")
            assert certificate_from_row(certificate_to_row(certificate)) == \
                certificate

    def test_row_elements_are_sql_native(self):
        for element in certificate_to_row(_FIXTURE):
            assert isinstance(element, (int, str))

    def test_unknown_code_rejected(self):
        bogus = CertificateRecord("s", 0, "P9", (1,), (), 0, "")
        with pytest.raises(ValueError, match="unknown certificate code"):
            certificate_to_row(bogus)

    def test_repolint_invariant_is_clean(self):
        assert lint_certificate_records() == []


class TestStores:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_save_load_round_trip(self, backend, tmp_path):
        store = (InMemoryStore() if backend == "memory"
                 else SqliteStore(tmp_path / "svc.db"))
        try:
            store.open_campaign("svc", {"kind": "service"})
            other = CertificateRecord("client-0", 0, "P1", (1, 2), ("x",),
                                      3, "w1[x] r2[x]")
            assert store.save_certificates("svc", [_FIXTURE, other]) == 2
            # Idempotent re-save (stream replays re-close with the same rows).
            assert store.save_certificates("svc", [_FIXTURE]) == 0
            assert store.load_certificates("svc") == (other, _FIXTURE)
            assert store.load_certificates("svc", stream="client-3") == \
                (_FIXTURE,)
            assert store.load_certificates("svc", stream="nope") == ()
        finally:
            store.close()

    def test_unknown_campaign_rejected(self):
        store = InMemoryStore()
        with pytest.raises(StoreError):
            store.save_certificates("ghost", [_FIXTURE])
        with pytest.raises(StoreError):
            store.load_certificates("ghost")
