"""Test package (enables relative imports under pytest)."""
