"""The online classifier's correctness contract: byte-equality with the
offline classifier on every stream shape — committed, aborted, stalled,
predicate/cursor traffic, every eviction cadence, and multiversion streams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import History, parse_history
from repro.core.isolation import IsolationLevelName
from repro.core.operations import Operation, OperationKind
from repro.explorer import ProgramSetSpec, explore
from repro.explorer.memo import BatchClassifier
from repro.service import OnlineClassifier, StreamError

COMMON_SETTINGS = settings(max_examples=120, deadline=None)

_ITEMS = ("x", "y", "z")
_PREDICATES = ("P", "Q")
_DATA_KINDS = (
    OperationKind.READ,
    OperationKind.WRITE,
    OperationKind.CURSOR_READ,
    OperationKind.CURSOR_WRITE,
    OperationKind.PREDICATE_READ,
    OperationKind.PREDICATE_WRITE,
)


@st.composite
def streams(draw, max_txns: int = 5, max_ops: int = 36):
    """Well-formed single-version streams: interleaved transactions, some of
    which commit, some abort, and some stall (no terminal at all)."""
    txns = draw(st.integers(min_value=2, max_value=max_txns))
    budget = draw(st.integers(min_value=4, max_value=max_ops))
    alive = list(range(1, txns + 1))
    ops = []
    emitted = 0
    while alive and emitted < budget:
        txn = alive[draw(st.integers(min_value=0, max_value=len(alive) - 1))]
        if emitted > 2 and draw(st.booleans()) and draw(st.booleans()):
            kind = draw(st.sampled_from((OperationKind.COMMIT,
                                         OperationKind.COMMIT,
                                         OperationKind.ABORT)))
            ops.append(Operation(kind, txn))
            alive.remove(txn)
        else:
            kind = draw(st.sampled_from(_DATA_KINDS))
            if kind.uses_predicate:
                pred = draw(st.sampled_from(_PREDICATES))
                item = (draw(st.sampled_from(_ITEMS))
                        if kind is OperationKind.PREDICATE_WRITE else None)
                ops.append(Operation(kind, txn, item=item, predicate=pred))
            else:
                ops.append(Operation(kind, txn,
                                     item=draw(st.sampled_from(_ITEMS))))
        emitted += 1
    for txn in list(alive):
        fate = draw(st.sampled_from(("commit", "abort", "stall")))
        if fate == "commit":
            ops.append(Operation(OperationKind.COMMIT, txn))
        elif fate == "abort":
            ops.append(Operation(OperationKind.ABORT, txn))
    return ops


def _offline_fields(ops):
    classification = BatchClassifier().classify(
        History(tuple(ops), name="t", validate=False))
    return (classification.serializable, classification.phenomena,
            classification.committed, classification.aborted)


def _drain(ops, **kwargs):
    classifier = OnlineClassifier("t", **kwargs)
    for op in ops:
        classifier.feed(op)
    return classifier


class TestOnlineMatchesOffline:
    @COMMON_SETTINGS
    @given(streams(), st.sampled_from((1, 3, 256)))
    def test_verdict_matches_offline(self, ops, evict_interval):
        """The tentpole contract: draining any stream yields the offline
        classification, field for field, at every eviction cadence."""
        classifier = _drain(ops, evict_interval=evict_interval)
        assert classifier.verdict().classification_fields() == \
            _offline_fields(ops)

    @COMMON_SETTINGS
    @given(streams(max_txns=4, max_ops=16))
    def test_every_prefix_matches_offline(self, ops):
        """The verdict is offline-correct at *every* prefix, not just at the
        end — the property that makes mid-stream certification trustworthy."""
        classifier = OnlineClassifier("t", evict_interval=1)
        for cut, op in enumerate(ops, start=1):
            classifier.feed(op)
            assert classifier.verdict().classification_fields() == \
                _offline_fields(ops[:cut])

    @COMMON_SETTINGS
    @given(streams())
    def test_eviction_never_changes_the_verdict(self, ops):
        """Aggressive eviction and no eviction agree exactly."""
        eager = _drain(ops, evict_interval=1)
        lazy = _drain(ops, evict=False)
        assert eager.verdict() == lazy.verdict()
        assert [c.code for c in eager.certificates] == \
            [c.code for c in lazy.certificates]

    def test_long_stream_state_is_bounded(self):
        """Disjoint committed epochs are evicted: per-transaction state does
        not accumulate over a long stream of non-overlapping transactions."""
        classifier = OnlineClassifier("t", evict_interval=8)
        for epoch in range(500):
            base = 2 * epoch + 1
            classifier.feed_shorthand(
                f"r{base}[x] w{base + 1}[x] w{base}[y] c{base} c{base + 1}")
        assert len(classifier._txns) < 50
        assert len(classifier._parent) < 50
        verdict = classifier.verdict()
        assert len(verdict.committed) == 1000


class TestCertificates:
    @COMMON_SETTINGS
    @given(streams(), st.sampled_from((1, 256)))
    def test_certificates_mirror_the_verdict(self, ops, evict_interval):
        """Certificates are exactly the fired phenomena (plus CYCLE when the
        stream went non-serializable), sequenced contiguously, each carrying
        a witness fragment of the involved transactions' own operations."""
        classifier = _drain(ops, evict_interval=evict_interval)
        verdict = classifier.verdict()
        certificates = classifier.certificates
        codes = [c.code for c in certificates]
        assert sorted(code for code in codes if code != "CYCLE") == \
            list(verdict.phenomena)
        assert (codes.count("CYCLE") == 1) == (not verdict.serializable)
        assert [c.seq for c in certificates] == list(range(len(certificates)))
        assert all(a.op_index <= b.op_index for a, b in
                   zip(certificates, certificates[1:]))
        for certificate in certificates:
            assert certificate.stream == "t"
            for op in parse_history(certificate.witness):
                assert op.txn in certificate.txns

    def test_certificate_fires_at_first_occurrence(self):
        classifier = OnlineClassifier("t")
        fresh = classifier.feed_shorthand("w1[x]")
        assert fresh == []
        fresh = classifier.feed_shorthand("w2[x]")
        assert [c.code for c in fresh] == ["P0"]
        assert fresh[0].txns == (1, 2)
        assert fresh[0].items == ("x",)
        assert fresh[0].op_index == 1
        # Same phenomenon never certifies twice.
        assert classifier.feed_shorthand("w1[y] w2[y]") == []

    def test_witness_window_bounds_the_fragment(self):
        classifier = OnlineClassifier("t", witness_window=4)
        classifier.feed_shorthand("w1[x]")
        classifier.feed_shorthand("r3[z] r3[z] r3[z] r3[z]")
        (certificate,) = classifier.feed_shorthand("w2[x]")
        # T1's write has rolled out of the 4-op window; only T2's remains.
        assert certificate.witness == "w2[x]"


class TestWellFormedness:
    def test_op_after_commit_raises(self):
        classifier = OnlineClassifier("t")
        classifier.feed_shorthand("r1[x] c1")
        with pytest.raises(StreamError, match=r"T1 performs w1\[x\] after "
                                              r"terminating"):
            classifier.feed_shorthand("w1[x]")

    def test_op_after_abort_raises(self):
        classifier = OnlineClassifier("t")
        classifier.feed_shorthand("r1[x] a1")
        with pytest.raises(StreamError):
            classifier.feed_shorthand("c1")

    def test_versioned_op_needs_multiversion(self):
        classifier = OnlineClassifier("t")
        with pytest.raises(StreamError, match="multiversion=True"):
            classifier.feed(Operation(OperationKind.WRITE, 1, item="x",
                                      version=1))

    def test_multiversion_excludes_eviction(self):
        with pytest.raises(StreamError, match="evict=False"):
            OnlineClassifier("t", multiversion=True, evict=True)


class TestMultiversionStreams:
    def test_paper_shapes_match_offline(self):
        cases = [
            "r1[x0] r2[x0] w1[x1] c1 w2[x2] c2",
            "r1[x0] r1[y0] r2[x0] r2[y0] w1[y1] w2[x1] c1 c2",  # write skew
            "r1[x0] w1[x1] r2[x0] a1 c2",
            "r1[x0] r2[x0] w2[x1] c2 r1[y0] w1[y1] c1",
        ]
        offline = BatchClassifier()
        for text in cases:
            history = parse_history(text, name="mv", multiversion=True)
            want = offline.classify(history)
            classifier = OnlineClassifier("mv", multiversion=True)
            for op in history:
                classifier.feed(op)
            assert classifier.verdict().classification_fields() == \
                (want.serializable, want.phenomena, want.committed,
                 want.aborted), text

    def test_si_realized_histories_match_offline(self):
        """Streams realized by the Snapshot Isolation engine — the service's
        actual multiversion input shape — classify identically online."""
        spec = ProgramSetSpec.make("write-skew")
        result = explore(spec,
                         levels=(IsolationLevelName.SNAPSHOT_ISOLATION,),
                         max_schedules=40, seed=11)
        offline = BatchClassifier()
        (level,) = result.levels.values()
        assert level.records, "exploration produced no records"
        for record in level.records:
            history = parse_history(record.history, multiversion=True)
            want = offline.classify(history)
            classifier = OnlineClassifier("si", multiversion=True)
            for op in history:
                classifier.feed(op)
            assert classifier.verdict().classification_fields() == \
                (want.serializable, want.phenomena, want.committed,
                 want.aborted), record.history


class TestFeedShorthand:
    @COMMON_SETTINGS
    @given(streams(max_txns=4, max_ops=20))
    def test_feed_shorthand_equals_feed(self, ops):
        by_op = _drain(ops)
        by_text = OnlineClassifier("t")
        by_text.feed_shorthand(
            History(tuple(ops), validate=False).to_shorthand())
        assert by_op.verdict() == by_text.verdict()
        assert by_op.certificates == by_text.certificates
