"""The certifier server's protocol, the load generator, and persistence."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.persist import InMemoryStore
from repro.service import CertifierServer, LoadConfig, generate_stream, run_load
from repro.service.loadgen import drain_offline, run_load_tcp


async def _session(host, port):
    reader, writer = await asyncio.open_connection(host, port)

    async def call(payload):
        writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await writer.drain()
        return json.loads((await reader.readline()).decode("utf-8"))

    return call, writer


def _run(coroutine):
    return asyncio.run(coroutine)


class TestProtocol:
    def test_open_feed_verdict_close(self):
        async def scenario():
            server = CertifierServer()
            await server.start()
            try:
                call, writer = await _session(server.host, server.port)
                assert (await call({"type": "open", "stream": "s"}))["type"] \
                    == "opened"
                ack = await call({"type": "ops", "stream": "s",
                                  "ops": "r1[x] w2[x] w1[x] c1 c2"})
                assert ack["type"] == "ack" and ack["ops"] == 5
                codes = [c["code"] for c in ack["certificates"]]
                assert "P2" in codes and "P4" in codes
                verdict = await call({"type": "verdict", "stream": "s"})
                assert verdict["serializable"] is False
                assert verdict["committed"] == [1, 2]
                closed = await call({"type": "close", "stream": "s"})
                assert closed["certificates"] == len(codes)
                writer.close()
            finally:
                await server.stop()
        _run(scenario())

    def test_errors_keep_the_connection_alive(self):
        async def scenario():
            server = CertifierServer()
            await server.start()
            try:
                call, writer = await _session(server.host, server.port)
                # Unknown request type -> request error.
                reply = await call({"type": "bogus"})
                assert reply["type"] == "error" and reply["kind"] == "request"
                # Ops on an unopened stream -> request error.
                reply = await call({"type": "ops", "stream": "s", "ops": "c1"})
                assert reply["type"] == "error"
                # The connection still works afterwards.
                assert (await call({"type": "open", "stream": "s"}))["type"] \
                    == "opened"
                writer.close()
            finally:
                await server.stop()
        _run(scenario())

    def test_stream_error_poisons_only_that_stream(self):
        async def scenario():
            server = CertifierServer()
            await server.start()
            try:
                call, writer = await _session(server.host, server.port)
                await call({"type": "open", "stream": "bad"})
                await call({"type": "open", "stream": "good"})
                reply = await call({"type": "ops", "stream": "bad",
                                    "ops": "c1 r1[x]"})
                assert reply["type"] == "error" and reply["kind"] == "stream"
                # The poisoned stream rejects further traffic...
                reply = await call({"type": "ops", "stream": "bad",
                                    "ops": "r2[x]"})
                assert reply["type"] == "error" and reply["kind"] == "stream"
                # ...while the other stream is untouched.
                reply = await call({"type": "ops", "stream": "good",
                                    "ops": "r1[x] c1"})
                assert reply["type"] == "ack"
                closed = await call({"type": "close", "stream": "bad"})
                assert closed.get("poisoned") is True
                writer.close()
            finally:
                await server.stop()
        _run(scenario())

    def test_stats_reports_latency_percentiles(self):
        async def scenario():
            server = CertifierServer()
            await server.start()
            try:
                call, writer = await _session(server.host, server.port)
                await call({"type": "open", "stream": "s"})
                await call({"type": "ops", "stream": "s", "ops": "r1[x] c1"})
                stats = await call({"type": "stats"})
                assert stats["ops"] == 2
                assert stats["p99_classify_us"] >= stats["p50_classify_us"] >= 0
                writer.close()
            finally:
                await server.stop()
        _run(scenario())

    def test_close_persists_certificates_to_the_store(self):
        store = InMemoryStore()

        async def scenario():
            server = CertifierServer(store=store, campaign_id="svc")
            await server.start()
            try:
                call, writer = await _session(server.host, server.port)
                await call({"type": "open", "stream": "s"})
                await call({"type": "ops", "stream": "s",
                            "ops": "r1[x] w2[x] w1[x] c1 c2"})
                closed = await call({"type": "close", "stream": "s"})
                assert closed["persisted"] == closed["certificates"] > 0
                writer.close()
            finally:
                await server.stop()

        _run(scenario())
        stored = store.load_certificates("svc", stream="s")
        assert [c.code for c in stored].count("CYCLE") == 1
        assert [c.seq for c in stored] == list(range(len(stored)))


class TestLoadgen:
    def test_streams_are_deterministic(self):
        config = LoadConfig(clients=3, transactions_per_client=5, seed=9)
        assert generate_stream(config, 0) == generate_stream(config, 0)
        assert generate_stream(config, 0) != generate_stream(config, 1)
        reseeded = LoadConfig(clients=3, transactions_per_client=5, seed=10)
        assert generate_stream(config, 0) != generate_stream(reseeded, 0)

    def test_transaction_ids_are_disjoint_across_clients(self):
        config = LoadConfig(clients=2, transactions_per_client=4, seed=1)
        txns = [set(), set()]
        for client in (0, 1):
            for token in generate_stream(config, client):
                digits = "".join(ch for ch in token.split("[")[0]
                                 if ch.isdigit())
                txns[client].add(int(digits))
        assert not (txns[0] & txns[1])

    def test_run_load_verifies_byte_equality(self):
        config = LoadConfig(clients=6, transactions_per_client=8, seed=4)
        report = run_load(config, verify=True)
        assert report.byte_equal is True
        assert report.certificates > 0
        assert report.ops > 0
        assert report.p99_classify_us >= report.p50_classify_us

    def test_offline_drain_matches_generate_stream(self):
        config = LoadConfig(clients=1, transactions_per_client=6, seed=2)
        classification = drain_offline(config, 0)
        # The generated stream must exercise the interesting region: at
        # least one committed transaction and at least one phenomenon over
        # the default config shape.
        assert classification.committed

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="clients"):
            LoadConfig(clients=0)
        with pytest.raises(ValueError, match="burst"):
            LoadConfig(burst=0)


class TestEndToEndLoad:
    def test_fifty_concurrent_clients_over_tcp(self):
        """The acceptance shape: >= 50 concurrent TCP clients, certificates
        produced, and the TCP totals equal to the in-process ground truth."""
        config = LoadConfig(clients=50, transactions_per_client=4, seed=3)
        ground = run_load(config, verify=True)
        assert ground.byte_equal is True

        async def scenario():
            server = CertifierServer()
            await server.start()
            try:
                return await run_load_tcp(server.host, server.port, config)
            finally:
                await server.stop()

        report = _run(scenario())
        assert report.clients == 50
        assert report.ops == ground.ops
        assert report.certificates == ground.certificates > 0
