"""ExploreOptions: validation, from_env, and legacy-kwargs equivalence.

The ISSUE 10 API contract: ``explore(spec, ExploreOptions(...))`` and the
deprecated ``explore(spec, **kwargs)`` spelling must produce byte-identical
``ExplorationResult`` streams (same determinism fingerprint), validate with
the same error messages, and never silently mix.  ``from_env`` is the CI
configuration surface — malformed variables must fail naming the variable.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isolation import IsolationLevelName
from repro.explorer import ExploreOptions, explore
from repro.explorer.options import DEFAULT_LEVELS, REDUCTIONS
from repro.workloads.program_sets import ProgramSetSpec

SPEC = ProgramSetSpec.make("contention", transactions=2, items=2, hot_items=1,
                           operations_per_transaction=2)
LEVELS = (IsolationLevelName.READ_COMMITTED,
          IsolationLevelName.SNAPSHOT_ISOLATION)

COMMON_SETTINGS = settings(max_examples=15, deadline=None)


class TestValidation:
    def test_defaults_match_legacy_signature(self):
        options = ExploreOptions()
        assert options.levels == DEFAULT_LEVELS
        assert options.mode == "auto"
        assert options.max_schedules == 1000
        assert options.workers == 1
        assert options.chunk_size == 64
        assert options.reduction == "none"
        assert options.outcome_memo == "auto"
        assert options.batch_kernel is None

    def test_levels_sequence_normalized_to_tuple(self):
        options = ExploreOptions(levels=list(LEVELS))
        assert options.levels == LEVELS
        assert isinstance(options.levels, tuple)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExploreOptions().mode = "sample"

    def test_replace_revalidates(self):
        base = ExploreOptions(seed=3)
        assert base.replace(seed=4).seed == 4
        assert base.seed == 3
        with pytest.raises(ValueError, match="workers must be >= 1"):
            base.replace(workers=0)

    @pytest.mark.parametrize("kwargs,message", [
        (dict(workers=0), "workers must be >= 1"),
        (dict(workers=1.5), "workers must be an int or 'auto'"),
        (dict(workers=True), "workers must be an int or 'auto'"),
        (dict(chunk_size=0), "chunk_size must be >= 1"),
        (dict(reduction="dpor"), "unknown reduction 'dpor'"),
        (dict(outcome_memo="always"), "outcome_memo must be True, False"),
        (dict(batch_kernel="maybe"), "batch_kernel must be None, 'auto'"),
        (dict(campaign_id="c"), "campaign_id requires a store"),
    ])
    def test_bad_values_rejected_eagerly(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            ExploreOptions(**kwargs)

    def test_explore_rejects_same_values_identically(self):
        # The shim folds kwargs into ExploreOptions, so the loose spelling
        # fails with the parameter object's exact message.
        with pytest.raises(ValueError, match="workers must be >= 1"):
            explore(SPEC, ExploreOptions(workers=0))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="workers must be >= 1"):
                explore(SPEC, workers=0)

    def test_field_names_are_the_legacy_surface(self):
        assert ExploreOptions.field_names() == (
            "levels", "mode", "max_schedules", "seed", "workers",
            "chunk_size", "reduction", "shared_cache", "outcome_memo",
            "static_pruning", "batch_kernel", "store", "campaign_id")

    def test_explore_kwargs_round_trips(self):
        options = ExploreOptions(mode="sample", max_schedules=7, seed=9)
        assert ExploreOptions(**options.explore_kwargs()) == options


class TestFromEnv:
    def test_empty_environment_gives_defaults(self):
        assert ExploreOptions.from_env({}) == ExploreOptions()

    def test_reads_every_variable(self):
        options = ExploreOptions.from_env({
            "EXPLORER_LEVELS": "READ COMMITTED, SERIALIZABLE",
            "EXPLORER_MODE": "sample",
            "EXPLORER_MAX_SCHEDULES": "123",
            "EXPLORER_SEED": "7",
            "EXPLORER_WORKERS": "auto",
            "EXPLORER_CHUNK_SIZE": "16",
            "EXPLORER_REDUCTION": "sleep-set",
            "EXPLORER_SHARED_CACHE": "off",
            "EXPLORER_OUTCOME_MEMO": "true",
            "EXPLORER_STATIC_PRUNING": "1",
            "EXPLORER_BATCH_KERNEL": "off",
        })
        assert options.levels == (IsolationLevelName.READ_COMMITTED,
                                  IsolationLevelName.SERIALIZABLE)
        assert options.mode == "sample"
        assert options.max_schedules == 123
        assert options.seed == 7
        assert options.workers == "auto"
        assert options.chunk_size == 16
        assert options.reduction == "sleep-set"
        assert options.shared_cache is False
        assert options.outcome_memo is True
        assert options.static_pruning is True
        assert options.batch_kernel == "off"

    def test_overrides_beat_environment(self):
        options = ExploreOptions.from_env({"EXPLORER_SEED": "7"}, seed=11,
                                          mode="exhaustive")
        assert options.seed == 11
        assert options.mode == "exhaustive"

    @pytest.mark.parametrize("name,raw,match", [
        ("EXPLORER_MAX_SCHEDULES", "many", "EXPLORER_MAX_SCHEDULES"),
        ("EXPLORER_SEED", "1.5", "EXPLORER_SEED"),
        ("EXPLORER_WORKERS", "two", "EXPLORER_WORKERS"),
        ("EXPLORER_CHUNK_SIZE", "", "EXPLORER_CHUNK_SIZE"),
        ("EXPLORER_SHARED_CACHE", "maybe", "EXPLORER_SHARED_CACHE"),
        ("EXPLORER_OUTCOME_MEMO", "sometimes", "EXPLORER_OUTCOME_MEMO"),
        ("EXPLORER_STATIC_PRUNING", "2", "EXPLORER_STATIC_PRUNING"),
    ])
    def test_malformed_values_name_the_variable(self, name, raw, match):
        with pytest.raises(ValueError, match=match):
            ExploreOptions.from_env({name: raw})

    def test_invalid_level_name_rejected(self):
        with pytest.raises(ValueError):
            ExploreOptions.from_env({"EXPLORER_LEVELS": "CHAOS MODE"})


class TestLegacyEquivalence:
    def test_legacy_kwargs_emit_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            explore(SPEC, levels=LEVELS, mode="sample", max_schedules=20,
                    seed=1)

    def test_options_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            explore(SPEC, ExploreOptions(levels=LEVELS, mode="sample",
                                         max_schedules=20, seed=1))

    def test_mixing_options_and_kwargs_raises(self):
        with pytest.raises(TypeError, match="not both"):
            explore(SPEC, ExploreOptions(), seed=1)

    def test_positional_non_options_raises(self):
        with pytest.raises(TypeError, match="must be an ExploreOptions"):
            explore(SPEC, {"seed": 1})

    def test_unknown_kwarg_raises(self):
        with pytest.raises(TypeError, match="unexpected keyword arguments: "
                                            "shceduels"):
            explore(SPEC, shceduels=5)

    @COMMON_SETTINGS
    @given(
        mode=st.sampled_from(["auto", "sample"]),
        max_schedules=st.integers(min_value=5, max_value=60),
        seed=st.integers(min_value=0, max_value=2**16),
        chunk_size=st.sampled_from([1, 8, 64]),
        reduction=st.sampled_from(REDUCTIONS),
    )
    def test_fingerprints_byte_equal(self, mode, max_schedules, seed,
                                     chunk_size, reduction):
        """The ISSUE 10 equivalence property: both spellings, one stream."""
        kwargs = dict(levels=LEVELS, mode=mode, max_schedules=max_schedules,
                      seed=seed, chunk_size=chunk_size, reduction=reduction)
        via_options = explore(SPEC, ExploreOptions(**kwargs))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_kwargs = explore(SPEC, **kwargs)
        assert via_options.fingerprint() == via_kwargs.fingerprint()
        assert via_options.total_schedules() == via_kwargs.total_schedules()

    def test_fingerprints_byte_equal_exhaustive(self):
        # The property above samples; this pins the exhaustive path (the
        # workload's full space is 252 interleavings, within budget).
        kwargs = dict(levels=LEVELS, mode="exhaustive", max_schedules=300)
        via_options = explore(SPEC, ExploreOptions(**kwargs))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_kwargs = explore(SPEC, **kwargs)
        assert via_options.fingerprint() == via_kwargs.fingerprint()
