"""The explorer's determinism contract and the coverage report built on it."""

from __future__ import annotations

import math

import pytest

from repro.analysis.coverage import build_coverage_report
from repro.core.isolation import IsolationLevelName, Possibility
from repro.explorer import ProgramSetSpec, explore

LEVELS_FAST = (
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.SERIALIZABLE,
)


class TestExhaustiveMode:
    def test_explores_exactly_the_multinomial_space_for_two_programs(self):
        spec = ProgramSetSpec.make("increments", transactions=2)
        result = explore(spec, levels=LEVELS_FAST, mode="exhaustive",
                         max_schedules=50)
        expected = math.factorial(6) // (math.factorial(3) ** 2)
        assert result.space.total == expected == 20
        for exploration in result.levels.values():
            assert len(exploration.records) == expected
            assert len({record.interleaving for record in exploration.records}) == expected

    def test_three_tiny_programs_match_the_formula(self):
        spec = ProgramSetSpec.make("increments", transactions=3)
        result = explore(spec, levels=[IsolationLevelName.SERIALIZABLE],
                         mode="exhaustive", max_schedules=2000)
        expected = math.factorial(9) // (math.factorial(3) ** 3)
        assert result.space.total == expected == 1680
        assert result.total_schedules() == expected

    def test_every_record_ran_to_completion(self):
        spec = ProgramSetSpec.make("bank-transfer")
        result = explore(spec, levels=LEVELS_FAST, mode="exhaustive",
                         max_schedules=300)
        for exploration in result.levels.values():
            for record in exploration.records:
                assert not record.stalled
                assert record.history  # something actually executed


class TestDeterminism:
    def test_same_seed_identical_schedule_set_and_fingerprint(self):
        spec = ProgramSetSpec.make("contention", transactions=4)
        first = explore(spec, levels=LEVELS_FAST, mode="sample",
                        max_schedules=60, seed=13)
        second = explore(spec, levels=LEVELS_FAST, mode="sample",
                         max_schedules=60, seed=13)
        assert first.space.schedules == second.space.schedules
        assert first.fingerprint() == second.fingerprint()

    def test_different_seed_different_schedules(self):
        spec = ProgramSetSpec.make("contention", transactions=4)
        first = explore(spec, levels=[IsolationLevelName.SERIALIZABLE],
                        mode="sample", max_schedules=40, seed=1)
        second = explore(spec, levels=[IsolationLevelName.SERIALIZABLE],
                         mode="sample", max_schedules=40, seed=2)
        assert first.space.schedules != second.space.schedules

    def test_chunk_size_does_not_change_results(self):
        spec = ProgramSetSpec.make("write-skew")
        coarse = explore(spec, levels=LEVELS_FAST, max_schedules=100, chunk_size=64)
        fine = explore(spec, levels=LEVELS_FAST, max_schedules=100, chunk_size=7)
        assert coarse.fingerprint() == fine.fingerprint()

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_results_byte_identical_to_serial(self, workers):
        spec = ProgramSetSpec.make("contention", transactions=3,
                                   operations_per_transaction=2)
        serial = explore(spec, levels=LEVELS_FAST, mode="sample",
                         max_schedules=80, seed=5, workers=1, chunk_size=10)
        parallel = explore(spec, levels=LEVELS_FAST, mode="sample",
                           max_schedules=80, seed=5, workers=workers, chunk_size=10)
        assert serial.fingerprint() == parallel.fingerprint()
        for level in LEVELS_FAST:
            assert serial.levels[level].records == parallel.levels[level].records

    def test_invalid_configuration_rejected(self):
        spec = ProgramSetSpec.make("write-skew")
        with pytest.raises(ValueError):
            explore(spec, workers=0)
        with pytest.raises(ValueError):
            explore(spec, chunk_size=0)
        with pytest.raises(ValueError):
            explore(spec, workers="turbo")
        with pytest.raises(ValueError):
            explore(spec, reduction="everything")

    def test_streaming_matches_the_materialized_path(self):
        """Memory-bounded iteration realizes the same records as a materialized run."""
        spec = ProgramSetSpec.make("contention", transactions=4)
        result = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="sample", max_schedules=120, seed=9, chunk_size=16)
        # The explorer streamed; nothing was materialized as a side effect.
        assert result.space._materialized is None

        # Execute the explicitly materialized schedule list in one chunk and
        # compare: the streamed chunks must realize byte-identical records.
        from repro.explorer.worker import ChunkTask, execute_chunk
        schedules = result.space.schedules
        assert len(schedules) == 120
        assert tuple(result.space) == schedules
        chunk = execute_chunk(ChunkTask(0, spec, IsolationLevelName.READ_COMMITTED,
                                        schedules))
        assert chunk.records == result.levels[IsolationLevelName.READ_COMMITTED].records

    def test_shared_cache_does_not_change_results(self):
        spec = ProgramSetSpec.make("contention", transactions=3,
                                   operations_per_transaction=2)
        cached = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="sample", max_schedules=60, seed=4, workers=2,
                         chunk_size=8, shared_cache=True)
        uncached = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                           mode="sample", max_schedules=60, seed=4, workers=2,
                           chunk_size=8, shared_cache=False)
        assert cached.fingerprint() == uncached.fingerprint()
        stats = cached.levels[IsolationLevelName.READ_COMMITTED].cache_stats
        assert "shared_hits" in stats and "shared_published" in stats


class TestWorkerAutoResolution:
    def test_workers_auto_uses_available_workers(self, monkeypatch):
        import repro.explorer.explorer as explorer_module
        monkeypatch.setattr(explorer_module, "available_workers", lambda: 2)
        spec = ProgramSetSpec.make("write-skew")
        result = explore(spec, levels=(IsolationLevelName.SERIALIZABLE,),
                         mode="exhaustive", max_schedules=100, workers="auto")
        assert result.workers == 2

    def test_workers_auto_matches_serial_fingerprint(self, monkeypatch):
        import repro.explorer.explorer as explorer_module
        monkeypatch.setattr(explorer_module, "available_workers", lambda: 2)
        spec = ProgramSetSpec.make("increments", transactions=2)
        serial = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="exhaustive", max_schedules=50, workers=1)
        auto = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                       mode="exhaustive", max_schedules=50, workers="auto")
        assert auto.fingerprint() == serial.fingerprint()


class TestCoverageReport:
    def test_lost_update_is_witnessed_where_the_paper_says(self):
        spec = ProgramSetSpec.make("increments", transactions=2)
        result = explore(spec, levels=(
            IsolationLevelName.READ_COMMITTED,
            IsolationLevelName.REPEATABLE_READ,
            IsolationLevelName.SNAPSHOT_ISOLATION,
        ), mode="exhaustive", max_schedules=50)
        report = build_coverage_report(result)
        assert report.witnessed(IsolationLevelName.READ_COMMITTED, "P4") > 0
        assert report.witnessed(IsolationLevelName.REPEATABLE_READ, "P4") == 0
        assert report.witnessed(IsolationLevelName.SNAPSHOT_ISOLATION, "P4") == 0
        witness = report.witness(IsolationLevelName.READ_COMMITTED, "P4")
        assert witness is not None
        interleaving, history = witness
        assert len(interleaving) == 6 and "w" in history

    def test_write_skew_separates_si_from_serializable(self):
        spec = ProgramSetSpec.make("write-skew")
        result = explore(spec, levels=(
            IsolationLevelName.SNAPSHOT_ISOLATION,
            IsolationLevelName.SERIALIZABLE,
        ), mode="exhaustive", max_schedules=100)
        report = build_coverage_report(result)
        si = report.levels[IsolationLevelName.SNAPSHOT_ISOLATION]
        assert report.witnessed(IsolationLevelName.SNAPSHOT_ISOLATION, "A5B") > 0
        assert si.non_serializable_fraction > 0.5
        ser = report.levels[IsolationLevelName.SERIALIZABLE]
        assert report.witnessed(IsolationLevelName.SERIALIZABLE, "A5B") == 0
        assert ser.non_serializable_fraction == 0.0

    def test_possibility_mapping_and_render(self):
        spec = ProgramSetSpec.make("increments", transactions=2)
        result = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="exhaustive", max_schedules=50)
        report = build_coverage_report(result, codes=("P4", "P0"))
        coverage = report.levels[IsolationLevelName.READ_COMMITTED]
        assert coverage.phenomena["P4"].possibility is Possibility.POSSIBLE
        assert 0 < coverage.phenomena["P4"].frequency < 1
        assert coverage.phenomena["P0"].possibility is Possibility.NOT_POSSIBLE
        rendered = report.render()
        assert "READ COMMITTED" in rendered and "P4" in rendered

    def test_cache_statistics_are_reported(self):
        spec = ProgramSetSpec.make("increments", transactions=2)
        result = explore(spec, levels=(IsolationLevelName.SERIALIZABLE,),
                         mode="exhaustive", max_schedules=50)
        stats = result.levels[IsolationLevelName.SERIALIZABLE].cache_stats
        # The small exhaustive space turns the outcome memo on ("auto"):
        # only one canonical member per commutation-equivalence class is
        # executed and classified; the other schedules reuse its outcome.
        # (The memo is per-process and may be warm from earlier tests, in
        # which case executed can legitimately be 0 — records are unchanged.)
        assert result.outcome_memo
        executed = result.executed_schedules()
        assert stats["outcome_executed"] == executed
        assert stats["outcome_hits"] == 20 - executed
        assert executed < 20
        assert stats["hits"] + stats["misses"] == executed

    def test_outcome_memo_off_classifies_every_schedule(self):
        spec = ProgramSetSpec.make("increments", transactions=2)
        result = explore(spec, levels=(IsolationLevelName.SERIALIZABLE,),
                         mode="exhaustive", max_schedules=50,
                         outcome_memo=False)
        stats = result.levels[IsolationLevelName.SERIALIZABLE].cache_stats
        assert not result.outcome_memo
        assert stats["hits"] + stats["misses"] == 20
        assert result.executed_schedules() == 20


class TestScale:
    def test_ten_thousand_sampled_schedules(self):
        """The acceptance-criteria scale: >= 10k interleavings of a contention set."""
        spec = ProgramSetSpec.make("contention", transactions=4, items=4,
                                   hot_items=2, operations_per_transaction=2)
        result = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="sample", max_schedules=10_000, seed=42)
        assert result.total_schedules() == 10_000
        # The stream was never materialized into a schedule list.
        assert result.space._materialized is None
        report = build_coverage_report(result)
        coverage = report.levels[IsolationLevelName.READ_COMMITTED]
        assert coverage.schedules == 10_000
        # Contention must actually surface anomalies somewhere in the space.
        assert any(item.witnessed for item in coverage.phenomena.values())

    def test_sample_of_a_small_space_caps_at_the_distinct_count(self):
        """Oversampling a small space yields every distinct schedule exactly once."""
        spec = ProgramSetSpec.make("contention", transactions=3, items=3,
                                   hot_items=1, operations_per_transaction=1)
        result = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="sample", max_schedules=10_000, seed=42)
        assert result.space.total == 560
        assert result.total_schedules() == 560
        assert result.space.distinct == 560
        records = result.levels[IsolationLevelName.READ_COMMITTED].records
        assert len({record.interleaving for record in records}) == 560
