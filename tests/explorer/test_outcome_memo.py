"""The schedule-level outcome memo: determinism, reuse, and soundness gates.

The memo executes the *canonical* member of each commutation-equivalence
class and serves its outcome to every member, so records must be a pure
function of the explore() inputs — independent of worker count, chunk size,
and memo warmth — and coverage must match a full enumeration exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis.coverage import coverage_mismatches
from repro.core.isolation import IsolationLevelName
from repro.explorer import ProgramSetSpec, explore
from repro.explorer.memo import ScheduleOutcome, ScheduleOutcomeMemo
from repro.explorer.worker import ChunkTask, execute_chunk
from repro.workloads.program_sets import build_program_set

LEVELS = (IsolationLevelName.READ_COMMITTED,
          IsolationLevelName.SNAPSHOT_ISOLATION)

#: A small space the "auto" policy memoizes (bank-transfer: 252 schedules).
SPEC = ProgramSetSpec.make("bank-transfer")


class TestMemoUnit:
    def _memo(self):
        _, programs = build_program_set(SPEC)
        return ScheduleOutcomeMemo(programs, terminal_scope="footprint")

    def test_put_and_peek(self):
        memo = self._memo()
        outcome = ScheduleOutcome("h", True, (), (1,), (), 0, 0, False)
        key = (1, 2, 1, 2)
        assert memo.peek(key) is None
        memo.put(key, outcome)
        assert memo.peek(key) is outcome
        assert len(memo) == 1

    def test_canonical_is_class_invariant(self):
        memo = self._memo()
        _, programs = build_program_set(SPEC)
        # Two interleavings differing by swapping adjacent commuting slots of
        # different transactions share a canonical key.
        from repro.explorer.schedules import schedule_space
        schedules = list(schedule_space(programs, mode="exhaustive",
                                        max_schedules=300))
        keys = {memo.canonical(schedule) for schedule in schedules}
        assert len(keys) < len(schedules)
        for key in keys:
            assert memo.canonical(key) == key  # canonical members are fixed points

    def test_preload_and_drain_fresh(self):
        memo = self._memo()
        outcome = ScheduleOutcome("h", True, (), (1,), (), 0, 0, False)
        memo.preload({(1, 1): outcome})
        assert memo.peek((1, 1)) is outcome
        assert memo.exports() == {}  # preloaded entries are not re-published
        memo.put((2, 2), outcome)
        drained = memo.drain_fresh()
        assert drained == {(2, 2): outcome}
        assert memo.drain_fresh() == {}
        assert memo.peek((2, 2)) is outcome


class TestMemoDeterminism:
    def test_hit_miss_split_does_not_change_records_across_worker_counts(self):
        serial = explore(SPEC, levels=LEVELS, mode="exhaustive",
                         max_schedules=300, outcome_memo=True, workers=1,
                         chunk_size=16)
        parallel = explore(SPEC, levels=LEVELS, mode="exhaustive",
                           max_schedules=300, outcome_memo=True, workers=2,
                           chunk_size=7)
        assert serial.outcome_memo and parallel.outcome_memo
        assert serial.fingerprint() == parallel.fingerprint()
        for level in LEVELS:
            assert serial.levels[level].records == parallel.levels[level].records

    def test_chunk_size_does_not_change_records(self):
        coarse = explore(SPEC, levels=LEVELS, mode="exhaustive",
                         max_schedules=300, outcome_memo=True, chunk_size=64)
        fine = explore(SPEC, levels=LEVELS, mode="exhaustive",
                       max_schedules=300, outcome_memo=True, chunk_size=5)
        assert coarse.fingerprint() == fine.fingerprint()

    def test_warm_memo_changes_executed_counts_but_never_records(self):
        first = explore(SPEC, levels=LEVELS, mode="exhaustive",
                        max_schedules=300, outcome_memo=True)
        second = explore(SPEC, levels=LEVELS, mode="exhaustive",
                         max_schedules=300, outcome_memo=True)
        assert first.fingerprint() == second.fingerprint()
        # The serial path shares one per-process memo: the second run is
        # answered entirely from it.
        assert second.executed_schedules() == 0
        assert second.total_schedules() == first.total_schedules()


class TestMemoSoundness:
    def test_coverage_matches_full_enumeration(self):
        full = explore(SPEC, levels=LEVELS, mode="exhaustive",
                       max_schedules=300, outcome_memo=False)
        memoized = explore(SPEC, levels=LEVELS, mode="exhaustive",
                           max_schedules=300, outcome_memo=True)
        assert coverage_mismatches(full, memoized, levels=LEVELS) == []
        assert memoized.total_schedules() == full.total_schedules()

    def test_records_keep_their_own_interleavings(self):
        result = explore(SPEC, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="exhaustive", max_schedules=300,
                         outcome_memo=True)
        records = result.levels[IsolationLevelName.READ_COMMITTED].records
        assert len({record.interleaving for record in records}) == len(records)

    def test_auto_policy(self):
        small = explore(SPEC, levels=(IsolationLevelName.READ_COMMITTED,),
                        mode="exhaustive", max_schedules=300)
        assert small.outcome_memo  # 252-schedule space: auto turns it on
        big = explore(ProgramSetSpec.make("contention", transactions=4, items=4,
                                          hot_items=2,
                                          operations_per_transaction=2),
                      levels=(IsolationLevelName.READ_COMMITTED,),
                      mode="sample", max_schedules=50, seed=3)
        assert not big.outcome_memo  # sparse sample of a ~1e10 space
        reduced = explore(SPEC, levels=(IsolationLevelName.READ_COMMITTED,),
                          mode="exhaustive", max_schedules=300,
                          reduction="sleep-set")
        assert not reduced.outcome_memo  # reduction already dedupes classes

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            explore(SPEC, outcome_memo="always")


class TestSharedOutcomeLog:
    def test_workers_share_outcomes_through_the_log(self):
        result = explore(SPEC, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="exhaustive", max_schedules=300,
                         outcome_memo=True, workers=2, chunk_size=16,
                         shared_cache=True)
        stats = result.levels[IsolationLevelName.READ_COMMITTED].cache_stats
        assert "outcomes_published" in stats
        serial = explore(SPEC, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="exhaustive", max_schedules=300,
                         outcome_memo=True, workers=1)
        assert result.fingerprint() == serial.fingerprint()

    def test_execute_chunk_memoized_equals_plain(self):
        """A memoized chunk must classify every schedule like a plain chunk."""
        _, programs = build_program_set(SPEC)
        from repro.explorer.schedules import schedule_space
        schedules = schedule_space(programs, mode="exhaustive",
                                   max_schedules=300).schedules
        plain = execute_chunk(ChunkTask(0, SPEC,
                                        IsolationLevelName.SNAPSHOT_ISOLATION,
                                        schedules))
        memoized = execute_chunk(ChunkTask(0, SPEC,
                                           IsolationLevelName.SNAPSHOT_ISOLATION,
                                           schedules, outcome_memo=True))
        assert len(plain.records) == len(memoized.records)
        for before, after in zip(plain.records, memoized.records):
            assert before.interleaving == after.interleaving
            assert before.serializable == after.serializable
            assert before.phenomena == after.phenomena
            assert before.committed == after.committed
            assert before.aborted == after.aborted
