"""Program-set registry: spec round-trips, determinism, and freshness."""

from __future__ import annotations

import pickle

import pytest

from repro.engine.scheduler import run_schedule
from repro.testbed import make_engine
from repro.core.isolation import IsolationLevelName
from repro.workloads.program_sets import (
    ProgramSetSpec,
    available_program_sets,
    build_program_set,
    register_program_set,
)


class TestSpec:
    def test_specs_are_picklable_and_value_compare(self):
        spec = ProgramSetSpec.make("contention", transactions=4, seed=9)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.kwargs() == {"transactions": 4, "seed": 9}
        assert "contention(" in spec.describe()

    def test_unknown_name_raises_with_the_known_names(self):
        with pytest.raises(KeyError, match="increments"):
            build_program_set(ProgramSetSpec.make("no-such-set"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_program_set("increments")(lambda: None)


class TestBuilders:
    def test_all_builtins_present(self):
        names = available_program_sets()
        for expected in ("increments", "bank-transfer", "write-skew",
                         "read-skew", "dirty-abort", "contention"):
            assert expected in names

    @pytest.mark.parametrize("name", ["increments", "bank-transfer", "write-skew",
                                      "read-skew", "dirty-abort", "contention"])
    def test_every_builder_yields_runnable_fresh_state(self, name):
        spec = ProgramSetSpec.make(name)
        database, programs = build_program_set(spec)
        assert programs
        outcome = run_schedule(
            make_engine(database, IsolationLevelName.SERIALIZABLE), programs
        )
        assert not outcome.stalled
        # A second build must be untouched by the first run.
        fresh_database, fresh_programs = build_program_set(spec)
        assert fresh_database is not database
        assert [p.label for p in fresh_programs] == [p.label for p in programs]

    def test_builds_are_deterministic(self):
        spec = ProgramSetSpec.make("contention", seed=3, transactions=5)
        _, first = build_program_set(spec)
        _, second = build_program_set(spec)
        assert [len(p) for p in first] == [len(p) for p in second]
        assert [p.label for p in first] == [p.label for p in second]

    def test_increments_lose_updates_only_in_bad_interleavings(self):
        spec = ProgramSetSpec.make("increments", transactions=2)
        database, programs = build_program_set(spec)
        serial = run_schedule(
            make_engine(database, IsolationLevelName.READ_COMMITTED), programs,
            interleaving=[1, 1, 1, 2, 2, 2],
        )
        assert serial.database.get_item("x") == 120
        database, programs = build_program_set(spec)
        racy = run_schedule(
            make_engine(database, IsolationLevelName.READ_COMMITTED), programs,
            interleaving=[1, 2, 1, 2, 1, 2],
        )
        assert racy.database.get_item("x") == 110  # one update lost
