"""Unit tests for the scenarios → explorer bridge (repro.explorer.scenarios)."""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName, Possibility
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from repro.explorer.scenarios import explore_scenario, explore_variant
from repro.storage.database import Database
from repro.testbed import engine_factory
from repro.workloads.scenarios import (
    AnomalyScenario,
    ScenarioVariant,
    run_variant,
    scenario_by_code,
)

RC = IsolationLevelName.READ_COMMITTED
RR = IsolationLevelName.REPEATABLE_READ
SI = IsolationLevelName.SNAPSHOT_ISOLATION


class TestExploreVariant:
    def test_covers_the_whole_space_and_finds_witnesses(self):
        scenario = scenario_by_code("P4")
        variant = scenario.variant("plain-read-modify-write")
        exploration = explore_variant(variant, RC, scenario_code="P4")
        # Two 3-step programs: C(6, 3) = 20 interleavings, all explored.
        assert exploration.space_size == 20
        assert exploration.schedules == 20
        assert exploration.mode == "exhaustive"
        assert 0 < exploration.executed <= exploration.schedules
        assert exploration.manifests
        assert 0.0 < exploration.frequency <= 1.0
        assert exploration.witness is not None
        assert exploration.witness_history

    def test_witness_replays_through_run_variant(self):
        scenario = scenario_by_code("P4")
        variant = scenario.variant("plain-read-modify-write")
        exploration = explore_variant(variant, RC, scenario_code="P4")
        replay = run_variant(variant, engine_factory(RC), "P4",
                             interleaving=exploration.witness)
        assert replay.manifested

    def test_reduction_matches_full_enumeration(self):
        """Sleep-set counts must equal reduction="none" counts, per level."""
        for code, variant_name, level in (
            ("P4", "plain-read-modify-write", RC),
            ("P4", "plain-read-modify-write", RR),   # deadlock territory
            ("A5B", "plain-reads", SI),              # multiversion scope
            ("P1", "read-of-rolled-back-write", RC),
        ):
            scenario = scenario_by_code(code)
            variant = scenario.variant(variant_name)
            full = explore_variant(variant, level, scenario_code=code,
                                   reduction="none")
            reduced = explore_variant(variant, level, scenario_code=code,
                                      reduction="sleep-set")
            for field in ("schedules", "manifested", "stalled", "deadlocked",
                          "engine_aborted", "witness"):
                assert getattr(reduced, field) == getattr(full, field), (
                    f"{code}/{variant_name} under {level.value}: "
                    f"{field} diverged under reduction")
            assert reduced.executed <= full.executed

    def test_prevented_variant_has_no_witness_anywhere(self):
        scenario = scenario_by_code("P4")
        variant = scenario.variant("plain-read-modify-write")
        exploration = explore_variant(variant, RR, scenario_code="P4")
        assert not exploration.manifests
        assert exploration.witness is None
        assert exploration.frequency == 0.0
        # Blocking engines deadlock freely out here — none of that is fatal.
        assert exploration.deadlocked > 0

    def test_stalled_schedules_are_counted_not_fatal(self):
        def build_database() -> Database:
            database = Database()
            database.set_item("x", 0)
            return database

        variant = ScenarioVariant(
            name="hung-writer",
            build_database=build_database,
            build_programs=lambda: [
                TransactionProgram(1, [WriteItem("x", 1)], label="never ends"),
                TransactionProgram(2, [ReadItem("x"), Commit()], label="reader"),
            ],
            interleaving=[1, 2, 2],
            manifests=lambda outcome: True,  # must never be consulted on stalls
        )
        exploration = explore_variant(variant, RC, scenario_code="TEST")
        # Of the 3 interleavings, only w1[x] before r2[x] wedges the reader on
        # the never-released write lock; the two schedules where T2 reads
        # first run to completion.
        assert exploration.schedules == 3
        assert exploration.stalled == 1
        # manifests returns True unconditionally, yet stalled schedules are
        # never counted: the predicate is only consulted on completed runs.
        assert exploration.manifested == exploration.schedules - exploration.stalled

    def test_rejects_unknown_reduction(self):
        scenario = scenario_by_code("P0")
        with pytest.raises(ValueError, match="reduction"):
            explore_variant(scenario.variants[0], RC, reduction="magic")


class TestExploreScenario:
    def test_aggregates_variants_into_a_cell(self):
        scenario = scenario_by_code("P4")
        exploration = explore_scenario(scenario, IsolationLevelName.CURSOR_STABILITY)
        assert exploration.possibility is Possibility.SOMETIMES_POSSIBLE
        by_name = {variant.variant_name: variant for variant in exploration.variants}
        assert by_name["plain-read-modify-write"].manifests
        assert not by_name["both-through-cursors"].manifests
        witness = exploration.witness
        assert witness is not None
        assert witness[0] == "plain-read-modify-write"

    def test_not_possible_cell_has_no_witness(self):
        scenario = scenario_by_code("A5A")
        exploration = explore_scenario(scenario, SI)
        assert exploration.possibility is Possibility.NOT_POSSIBLE
        assert exploration.witness is None

    def test_empty_scenario_raises(self):
        empty = AnomalyScenario(code="PX", name="empty", description="",
                                variants=[])
        with pytest.raises(ValueError, match="no variants"):
            explore_scenario(empty, RC)
