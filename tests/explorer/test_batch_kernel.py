"""The batch-drain kernel's determinism contract: byte-equal to the trie walk.

The vectorized flat-array kernel (:mod:`repro.explorer.batch_kernel`) is a
pure optimization: for every engine level and every registered workload, a
kernel-executed schedule must produce an :class:`ExecutionOutcome` that is
byte-identical — history, statuses, contexts, abort reasons, blocked-event
counts, deadlocks, stall flag, final database — to the stepwise trie
executor's, including stalled and deadlock-aborted prefix schedules.  Rows the
kernel cannot handle eject to the stepwise path; without numpy the kernel
never builds and everything falls back, byte-equal by construction.
"""

from __future__ import annotations

import random

import pytest

from repro.core.isolation import IsolationLevelName
from repro.explorer import explore
from repro.explorer import batch_kernel as batch_kernel_module
from repro.explorer.batch_kernel import BatchStats, build_batch_kernel, numpy_available
from repro.explorer.schedules import schedule_space
from repro.explorer.trie_executor import TrieExecutor
from repro.testbed import ALL_ENGINE_LEVELS
from repro.workloads.program_sets import (
    ProgramSetSpec,
    available_program_sets,
    build_program_set,
)

KERNEL_LEVELS = (IsolationLevelName.READ_COMMITTED,
                 IsolationLevelName.REPEATABLE_READ,
                 IsolationLevelName.SERIALIZABLE,
                 IsolationLevelName.SNAPSHOT_ISOLATION,
                 IsolationLevelName.ORACLE_READ_CONSISTENCY)

CONTENTION = ProgramSetSpec.make("contention", transactions=3, items=3,
                                 hot_items=2, operations_per_transaction=2)


def outcome_key(outcome):
    return (
        outcome.engine_name,
        outcome.history.to_shorthand(),
        tuple(sorted((txn, state.value) for txn, state in outcome.statuses.items())),
        tuple(sorted((txn, tuple(sorted(ctx.items())))
                     for txn, ctx in outcome.contexts.items())),
        tuple(sorted(outcome.abort_reasons.items())),
        outcome.blocked_events,
        tuple((deadlock.cycle, deadlock.victim) for deadlock in outcome.deadlocks),
        outcome.stalled,
        tuple(sorted(outcome.database.items())),
    )


def randomized_schedules(programs, rng, count):
    """Shuffled full interleavings mixed with prefixes and over-long rows.

    Prefixes leave transactions holding locks when the drain starts (the
    stalled / deadlock-aborted cases); over-long rows exercise slots past a
    transaction's last step (no-op attempts).
    """
    slots = []
    for program in programs:
        slots.extend([program.txn] * len(program.steps))
    out = []
    for _ in range(count):
        row = list(slots)
        rng.shuffle(row)
        roll = rng.random()
        if roll < 0.2:
            row = row[:rng.randrange(len(row) + 1)]
        elif roll < 0.3 and row:
            row = row + [rng.choice(row)]
        out.append(tuple(row))
    return out


def build_pair(spec, level):
    """A (stepwise executor, kernel) pair over fresh identical testbeds."""
    db_trie, programs_trie = build_program_set(spec)
    trie = TrieExecutor(db_trie, programs_trie, level, batch_kernel="off")
    db_kernel, programs_kernel = build_program_set(spec)
    fallback_host = TrieExecutor(db_kernel, programs_kernel, level,
                                 batch_kernel="off")
    kernel = build_batch_kernel(db_kernel, programs_kernel, level,
                                fallback_host._engine.name,
                                fallback=fallback_host.run_one)
    return trie, kernel


needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="batch kernel needs numpy")


@needs_numpy
@pytest.mark.parametrize("level", KERNEL_LEVELS, ids=lambda level: level.value)
def test_randomized_sweep_byte_equal_across_workloads(level):
    """Seeded sweep: every registered workload, full/prefix/over-long rows."""
    rng = random.Random(20260808)
    for name in available_program_sets():
        spec = ProgramSetSpec.make(name)
        _, programs = build_program_set(spec)
        schedules = randomized_schedules(programs, rng, 30)
        trie, kernel = build_pair(spec, level)
        assert kernel is not None, (name, level)
        expected = {}
        for index, outcome in trie.run_batch(schedules):
            expected[index] = outcome_key(outcome)
        for index, outcome in kernel.run_batch(schedules):
            assert outcome_key(outcome) == expected[index], (name, level, index)
        assert kernel.stats.rows_ejected == 0
        assert kernel.stats.occupancy == 1.0


@needs_numpy
def test_deadlock_aborted_rows_match():
    """The sweep must actually cover deadlock resolution, not dodge it."""
    spec = ProgramSetSpec.make("increments")
    level = IsolationLevelName.REPEATABLE_READ
    _, programs = build_program_set(spec)
    schedules = schedule_space(programs, mode="sample", max_schedules=200,
                               seed=7).schedules
    trie, kernel = build_pair(spec, level)
    expected = {index: outcome_key(outcome)
                for index, outcome in trie.run_batch(schedules)}
    deadlocks = 0
    for index, outcome in kernel.run_batch(schedules):
        assert outcome_key(outcome) == expected[index]
        deadlocks += len(outcome.deadlocks)
    assert deadlocks > 0, "workload produced no deadlocks; pick another gate"


@needs_numpy
def test_unknown_transaction_rows_eject_to_fallback():
    """Slots naming foreign transactions route the row to the stepwise path."""
    level = IsolationLevelName.READ_COMMITTED
    _, programs = build_program_set(CONTENTION)
    schedules = list(schedule_space(programs, mode="sample", max_schedules=20,
                                    seed=3).schedules)
    alien = tuple([999] + list(schedules[0]))
    schedules.append(alien)
    db, progs = build_program_set(CONTENTION)
    reference = TrieExecutor(db, progs, level, batch_kernel="off")
    expected = {index: outcome_key(outcome)
                for index, outcome in reference.run_batch(schedules)}
    trie, kernel = build_pair(CONTENTION, level)
    for index, outcome in kernel.run_batch(schedules):
        assert outcome_key(outcome) == expected[index]
    assert kernel.stats.rows_ejected == 1
    assert kernel.stats.rows_fast == len(schedules) - 1
    assert kernel.stats.occupancy < 1.0


@needs_numpy
def test_without_fallback_unknown_rows_raise():
    _, programs = build_program_set(CONTENTION)
    schedules = schedule_space(programs, mode="sample", max_schedules=4,
                               seed=1).schedules
    db, progs = build_program_set(CONTENTION)
    host = TrieExecutor(db, progs, IsolationLevelName.READ_COMMITTED,
                        batch_kernel="off")
    kernel = build_batch_kernel(db, progs, IsolationLevelName.READ_COMMITTED,
                                host._engine.name, fallback=None)
    with pytest.raises(ValueError):
        kernel.run_one((999,) + tuple(schedules[0]))


@needs_numpy
@pytest.mark.parametrize("level", KERNEL_LEVELS, ids=lambda level: level.value)
def test_checkpoint_restore_round_trip_of_in_flight_state(level):
    """Revisiting a schedule after others restores byte-identical state."""
    _, programs = build_program_set(CONTENTION)
    schedules = schedule_space(programs, mode="sample", max_schedules=24,
                               seed=13).schedules
    _, kernel = build_pair(CONTENTION, level)
    first = [outcome_key(outcome)
             for _, outcome in sorted(kernel.run_batch(schedules))]
    # Re-running the same batch pops the checkpoint stack back through every
    # in-flight prefix the first pass created; results must not drift.
    second = [outcome_key(outcome)
              for _, outcome in sorted(kernel.run_batch(schedules))]
    assert first == second


@needs_numpy
def test_emulator_checkpoint_restore_mid_drain():
    """A raw emulator checkpoint taken mid-schedule restores exactly."""
    level = IsolationLevelName.SERIALIZABLE
    _, programs = build_program_set(CONTENTION)
    schedule = schedule_space(programs, mode="sample", max_schedules=1,
                              seed=5).schedules[0]
    _, kernel = build_pair(CONTENTION, level)
    emulator = kernel._emulator
    half = len(schedule) // 2
    emulator.apply_slots(schedule[:half])
    token = emulator.checkpoint()
    emulator.apply_slots(schedule[half:])
    emulator.drain()
    first = emulator.build_outcome(kernel.engine_name, kernel._database)
    first_key = outcome_key(first)
    emulator.restore(token)
    emulator.apply_slots(schedule[half:])
    emulator.drain()
    second = emulator.build_outcome(kernel.engine_name, kernel._database)
    assert outcome_key(second) == first_key


@needs_numpy
def test_explore_records_identical_with_and_without_kernel():
    """explore(batch_kernel=...) never changes records, only speed."""
    levels = (IsolationLevelName.READ_COMMITTED,
              IsolationLevelName.SNAPSHOT_ISOLATION)
    on = explore(CONTENTION, levels=levels, mode="sample", max_schedules=200,
                 seed=6, batch_kernel="on")
    off = explore(CONTENTION, levels=levels, mode="sample", max_schedules=200,
                  seed=6, batch_kernel="off")
    assert on.fingerprint() == off.fingerprint()


def test_pure_python_fallback_without_numpy(monkeypatch):
    """With numpy unavailable the kernel never builds and auto falls back."""
    monkeypatch.setattr(batch_kernel_module, "_NUMPY", False)
    assert not numpy_available()
    db, programs = build_program_set(CONTENTION)
    executor = TrieExecutor(db, programs, IsolationLevelName.READ_COMMITTED,
                            batch_kernel="auto")
    assert executor._batch is None
    schedules = schedule_space(programs, mode="sample", max_schedules=12,
                               seed=2).schedules
    db2, progs2 = build_program_set(CONTENTION)
    reference = TrieExecutor(db2, progs2, IsolationLevelName.READ_COMMITTED,
                             batch_kernel="off")
    expected = {index: outcome_key(outcome)
                for index, outcome in reference.run_batch(schedules)}
    for index, outcome in executor.run_batch(schedules):
        assert outcome_key(outcome) == expected[index]
    assert executor.batch_stats.schedules == 0
    with pytest.raises(ValueError):
        db3, progs3 = build_program_set(CONTENTION)
        TrieExecutor(db3, progs3, IsolationLevelName.READ_COMMITTED,
                     batch_kernel="on")


def test_batch_stats_occupancy_and_dict_shape():
    stats = BatchStats()
    assert stats.occupancy == 1.0
    stats.schedules = 4
    stats.rows_fast = 3
    stats.rows_ejected = 1
    assert stats.occupancy == 0.75
    as_dict = stats.as_dict()
    for key in ("schedules", "rows_fast", "rows_ejected", "slots_total",
                "slots_executed", "checkpoints_created", "restores",
                "occupancy"):
        assert key in as_dict


def test_invalid_batch_kernel_mode_rejected():
    db, programs = build_program_set(CONTENTION)
    with pytest.raises(ValueError):
        TrieExecutor(db, programs, IsolationLevelName.READ_COMMITTED,
                     batch_kernel="sometimes")
