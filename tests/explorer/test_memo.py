"""The memoized classifier must agree exactly with the direct analyses."""

from __future__ import annotations


from repro.core.dependency import build_dependency_graph, is_serializable
from repro.core.history import parse_history
from repro.core.mv_analysis import assign_write_versions, mv_is_serializable, mv_to_sv
from repro.core.phenomena import detect_all
from repro.explorer.memo import BatchClassifier, PrefixGraphBuilder
from repro.workloads.generators import history_corpus


def labelled_edges(graph):
    return {(edge.source, edge.target, edge.kind, edge.item) for edge in graph.edges}


class TestPrefixGraphBuilder:
    def test_agrees_with_direct_construction_on_a_corpus(self):
        builder = PrefixGraphBuilder()
        for history in history_corpus(seed=99, count=150, transactions=4,
                                      operations_per_transaction=4):
            direct = build_dependency_graph(history)
            memoized = builder.graph_for(history)
            assert set(memoized.nodes) == set(direct.nodes), history.to_shorthand()
            assert labelled_edges(memoized) == labelled_edges(direct), history.to_shorthand()
            assert memoized.is_acyclic() == direct.is_acyclic()

    def test_handles_predicate_operations(self):
        history = parse_history("r1[P] w2[insert y to P] c2 r1[P] c1")
        direct = build_dependency_graph(history)
        memoized = PrefixGraphBuilder().graph_for(history)
        assert labelled_edges(memoized) == labelled_edges(direct)

    def test_prefix_reuse_actually_happens(self):
        builder = PrefixGraphBuilder()
        h1 = parse_history("w1[x] r2[x] c1 c2")
        h2 = parse_history("w1[x] r2[x] c2 c1")  # shares a 2-op prefix
        builder.graph_for(h1)
        created_after_first = builder.nodes_created
        builder.graph_for(h2)
        assert builder.nodes_reused >= 2
        assert builder.nodes_created == created_after_first + 2

    def test_node_budget_disables_caching_not_correctness(self):
        builder = PrefixGraphBuilder(max_nodes=1)
        history = parse_history("w1[x] r2[x] w2[y] r1[y] c1 c2")
        direct = build_dependency_graph(history)
        assert labelled_edges(builder.graph_for(history)) == labelled_edges(direct)


class TestBatchClassifier:
    def test_matches_direct_serializability_and_detection(self):
        classifier = BatchClassifier()
        for history in history_corpus(seed=4, count=80):
            result = classifier.classify(history)
            assert result.serializable == is_serializable(history)
            expected = tuple(sorted(
                code for code, found in detect_all(history).items() if found
            ))
            assert result.phenomena == expected

    def test_duplicate_histories_hit_the_cache(self):
        classifier = BatchClassifier()
        history = parse_history("w1[x] r2[x] c1 c2")
        first = classifier.classify(history)
        second = classifier.classify(parse_history("w1[x] r2[x] c1 c2"))
        assert first == second
        assert classifier.stats["hits"] == 1
        assert classifier.stats["misses"] == 1

    def test_multiversion_histories_use_the_mv_touchstone(self):
        # Write skew realized under SI: versioned reads, unversioned writes.
        skew = parse_history(
            "r1[x0=50] r1[y0=50] w1[y=100] r2[x0=50] c1 r2[y0=50] w2[x=100] c2",
            multiversion=True,
        )
        completed = assign_write_versions(skew)
        assert all(op.version is not None for op in completed
                   if op.is_write and op.item is not None)
        assert not mv_is_serializable(completed)
        result = BatchClassifier().classify(skew)
        assert not result.serializable
        assert "A5B" in result.phenomena

    def test_items_created_during_the_run_version_from_zero(self):
        # T1 creates item z (not in the initial database); T2 then reads the
        # version T1 installed, which the engine numbers 0.  With the initial
        # item set supplied, the serial execution classifies as serializable.
        history = parse_history(
            "r1[y0=5] w1[z=7] c1 r2[z0=7] w2[y=9] c2", multiversion=True,
        )
        informed = BatchClassifier(initial_items=("y",)).classify(history)
        assert informed.serializable
        completed = assign_write_versions(history, initial_items=("y",))
        z_writes = [op for op in completed if op.is_write and op.item == "z"]
        assert [op.version for op in z_writes] == [0]
        # Without the initial item set, every item is assumed to pre-exist and
        # the first write of z is stamped 1 — misaligned with its reader.
        assert not BatchClassifier().classify(history).serializable

    def test_write_skew_over_items_created_mid_run_is_caught(self):
        # T1 and T2 each read the item the other then creates: the classic
        # rw-cycle, but over items with no initial version — their reads come
        # back unversioned, so the anti-dependencies hinge on read completion.
        history = parse_history(
            "r1[x0=1] r2[x0=1] r1[z] r2[w] w1[w=1] w2[z=2] c1 c2",
            multiversion=True,
        )
        completed = assign_write_versions(history, initial_items=("x",))
        reads = {(op.txn, op.item): op.version for op in completed if op.is_read}
        assert reads[(1, "z")] == -1 and reads[(2, "w")] == -1
        assert not mv_is_serializable(completed)
        result = BatchClassifier(initial_items=("x",)).classify(history)
        assert not result.serializable

    def test_reads_of_own_pending_writes_stay_at_the_commit_point(self):
        # The engines return a txn's own buffered write with version=None; the
        # completion must stamp it with the installed version so mv_to_sv does
        # not relocate it before the write that produced its value.
        history = parse_history(
            "r2[y0=1] w1[x=5] r1[x=5] c1 c2", multiversion=True,
        )
        completed = assign_write_versions(history, initial_items=("x", "y"))
        own_read = next(op for op in completed if op.is_read and op.txn == 1)
        own_write = next(op for op in completed if op.is_write and op.txn == 1)
        assert own_read.version == own_write.version == 1
        mapped = mv_to_sv(completed)
        ops = list(mapped)
        write_at = next(i for i, op in enumerate(ops) if op.is_write and op.txn == 1)
        read_at = next(i for i, op in enumerate(ops) if op.is_read and op.txn == 1)
        assert write_at < read_at

    def test_snapshot_reads_are_not_dirty_reads(self):
        # T2 reads the *old* version after T1's write: no P1 under the MV mapping.
        history = parse_history("w1[x=10] r2[x0=50] c1 c2", multiversion=True)
        result = BatchClassifier().classify(history)
        assert "P1" not in result.phenomena
        assert "A1" not in result.phenomena


class TestFusedMvClassifyCore:
    """The fused MV core must equal the unfused three-stage pipeline."""

    def _assert_equivalent(self, history, initial_items=None):
        from repro.explorer.memo import _mv_classify_core

        completed = assign_write_versions(history, initial_items)
        expected_serializable = mv_is_serializable(completed)
        expected_mapped = mv_to_sv(completed)
        serializable, mapped = _mv_classify_core(
            history, None if initial_items is None else frozenset(initial_items))
        assert serializable == expected_serializable, history.to_shorthand()
        assert mapped == expected_mapped, history.to_shorthand()

    def test_on_catalogued_mv_histories(self):
        from repro.core.catalog import CATALOG

        checked = 0
        for entry in CATALOG.values():
            history = entry.history if hasattr(entry, "history") else entry
            if history.is_multiversion():
                self._assert_equivalent(history)
                checked += 1
        assert checked >= 1

    def test_on_realized_snapshot_isolation_histories(self):
        from repro.core.isolation import IsolationLevelName
        from repro.explorer import ProgramSetSpec, schedule_space
        from repro.explorer.trie_executor import TrieExecutor
        from repro.explorer.worker import _initial_items
        from repro.workloads.program_sets import build_program_set

        spec = ProgramSetSpec.make("contention", transactions=3, items=3,
                                   hot_items=2, operations_per_transaction=2)
        for level in (IsolationLevelName.SNAPSHOT_ISOLATION,
                      IsolationLevelName.ORACLE_READ_CONSISTENCY):
            database, programs = build_program_set(spec)
            items = _initial_items(database)
            executor = TrieExecutor(database, programs, level)
            schedules = schedule_space(programs, mode="sample",
                                       max_schedules=120, seed=11).schedules
            for _, outcome in executor.run_batch(schedules):
                if outcome.history.is_multiversion():
                    self._assert_equivalent(outcome.history, items)
