"""Partial-order reduction: commutation analysis, canonicalization, soundness.

The load-bearing property is the *soundness gate*: for every registered
program set whose exhaustive space fits a test-friendly budget, exploring with
``reduction="sleep-set"`` must report exactly the same per-level anomaly
coverage — schedule counts, serializable counts, per-phenomenon witness
counts, and witness interleavings — as full enumeration, while executing
fewer (or equal) schedules.
"""

from __future__ import annotations

import pytest

from repro.analysis.coverage import coverage_mismatches
from repro.core.isolation import IsolationLevelName
from repro.explorer import (
    CommutationOracle,
    ProgramSetSpec,
    build_execution_plan,
    build_program_set,
    explore,
    schedule_space,
)
from repro.explorer.schedules import count_interleavings
from repro.workloads.program_sets import available_program_sets

#: Keep the gate exhaustive but fast: every registered set whose space fits.
GATE_SPACE_LIMIT = 5000

GATE_LEVELS = (
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.SERIALIZABLE,
)


def _gate_specs():
    """Every registered program set (default parameters) with a small space."""
    specs = [ProgramSetSpec.make(name) for name in available_program_sets()]
    # Stress shapes the defaults don't cover: a random contended set with
    # blocking and deadlocks, a multi-shard set, a three-way conflict.
    specs.append(ProgramSetSpec.make("contention", transactions=3, items=3,
                                     hot_items=1, operations_per_transaction=1))
    specs.append(ProgramSetSpec.make("increments", transactions=3))
    selected = []
    for spec in specs:
        _, programs = build_program_set(spec)
        if count_interleavings([len(p) for p in programs]) <= GATE_SPACE_LIMIT:
            selected.append(spec)
    return selected


def assert_identical_coverage(full, reduced, levels=GATE_LEVELS):
    """The reduced exploration must report exactly what full enumeration does."""
    assert coverage_mismatches(full, reduced, levels=levels) == []


class TestCommutationOracle:
    def _oracle(self, name, **params):
        _, programs = build_program_set(ProgramSetSpec.make(name, **params))
        return CommutationOracle(programs)

    def test_same_transaction_never_commutes(self):
        oracle = self._oracle("sharded-increments")
        assert not oracle.commutes(1, 0, 1, 1)

    def test_disjoint_shards_commute(self):
        oracle = self._oracle("sharded-increments", shards=2,
                              transactions_per_shard=1)
        # Transactions 1 and 2 touch x0 and x1 respectively: everything
        # commutes, including their terminals (different conflict components).
        for occ_a in range(3):
            for occ_b in range(3):
                assert oracle.commutes(1, occ_a, 2, occ_b)

    def test_conflicting_steps_do_not_commute(self):
        oracle = self._oracle("increments", transactions=2)
        # Both write x: occurrence 1 (the read-modify-write) must stay ordered.
        assert not oracle.commutes(1, 1, 2, 1)

    def test_terminals_are_ordered_within_a_conflict_component(self):
        oracle = self._oracle("write-skew")
        # T1 commits at occurrence 3; T2's first read touches only x, which
        # T1 never writes — but the commit is a visibility boundary for the
        # whole conflict component, so the pair must not swap.
        assert not oracle.commutes(1, 3, 2, 0)

    def test_footprint_scope_relaxes_terminals_for_locking_engines(self):
        """Locking engines have no snapshot boundaries: a terminal only
        matters to events that conflict with its transaction's accumulated
        footprint, so the write-skew commit/first-read pair above commutes."""
        _, programs = build_program_set(ProgramSetSpec.make("write-skew"))
        oracle = CommutationOracle(programs, terminal_scope="footprint")
        # c1's effective footprint is {r x, r y, w y}; r2[x] is read-only on
        # x — no write-involved overlap, so under footprint scope they swap.
        assert oracle.commutes(1, 3, 2, 0)
        # Conflicting pairs stay ordered regardless of scope: c1 vs w2[x]
        # (T2's write occurrence) overlaps on x.
        assert not oracle.commutes(1, 3, 2, 2)

    def test_unknown_terminal_scope_rejected(self):
        _, programs = build_program_set(ProgramSetSpec.make("write-skew"))
        with pytest.raises(ValueError, match="terminal scope"):
            CommutationOracle(programs, terminal_scope="magic")

    def test_canonical_key_is_a_class_invariant(self):
        _, programs = build_program_set(
            ProgramSetSpec.make("sharded-increments", shards=2,
                               transactions_per_shard=1))
        oracle = CommutationOracle(programs)
        # All interleavings of two fully disjoint transactions are equivalent.
        space = schedule_space(programs, max_schedules=100)
        keys = {oracle.canonical_key(schedule) for schedule in space}
        assert len(keys) == 1

    def test_canonical_key_separates_conflicting_orders(self):
        _, programs = build_program_set(
            ProgramSetSpec.make("increments", transactions=2))
        oracle = CommutationOracle(programs)
        assert oracle.canonical_key((1, 1, 1, 2, 2, 2)) != \
            oracle.canonical_key((2, 2, 2, 1, 1, 1))


class TestExecutionPlan:
    def test_plan_covers_every_schedule(self):
        _, programs = build_program_set(ProgramSetSpec.make("bank-transfer"))
        space = schedule_space(programs, max_schedules=500)
        plan = build_execution_plan(space, programs)
        assert plan.selected == space.selected == 252
        assert len(plan.executed) < plan.selected
        assert all(0 <= slot < len(plan.executed) for slot in plan.assignment)
        # Every representative covers itself.
        schedules = list(space)
        for slot, representative in enumerate(plan.executed):
            position = schedules.index(representative)
            assert plan.assignment[position] == slot

    def test_ratio_on_disjoint_structure(self):
        _, programs = build_program_set(
            ProgramSetSpec.make("sharded-increments", shards=2,
                               transactions_per_shard=1))
        space = schedule_space(programs, max_schedules=100)
        plan = build_execution_plan(space, programs)
        assert len(plan.executed) == 1
        assert plan.ratio == 20.0

    def test_footprint_scope_executes_no_more_than_component_scope(self):
        """The relaxed terminal rule can only coarsen equivalence classes."""
        for name in ("write-skew", "read-skew", "dirty-abort", "bank-transfer"):
            _, programs = build_program_set(ProgramSetSpec.make(name))
            space = schedule_space(programs, max_schedules=5000)
            component = build_execution_plan(space.schedules, programs,
                                             terminal_scope="component")
            footprint = build_execution_plan(space.schedules, programs,
                                             terminal_scope="footprint")
            assert component.terminal_scope == "component"
            assert footprint.terminal_scope == "footprint"
            assert len(footprint.executed) <= len(component.executed), name
            assert footprint.selected == component.selected == space.selected


class TestSoundnessGate:
    """DPOR-reduced coverage must equal exhaustive coverage, set by set."""

    @pytest.mark.parametrize(
        "spec", _gate_specs(), ids=lambda spec: spec.describe())
    def test_reduced_coverage_matches_exhaustive(self, spec):
        # outcome_memo=False: the reference must be a true full enumeration
        # (the schedule-outcome memo would skip equivalent schedules itself,
        # making the executed-count comparison below meaningless).
        full = explore(spec, levels=GATE_LEVELS, mode="exhaustive",
                       max_schedules=GATE_SPACE_LIMIT, outcome_memo=False)
        reduced = explore(spec, levels=GATE_LEVELS, mode="exhaustive",
                          max_schedules=GATE_SPACE_LIMIT,
                          reduction="sleep-set")
        assert reduced.executed_schedules() <= full.executed_schedules()
        assert reduced.total_schedules() == full.total_schedules()
        assert_identical_coverage(full, reduced)

    def test_reduction_achieves_at_least_2x_on_a_registered_set(self):
        result = explore(ProgramSetSpec.make("sharded-increments"),
                         levels=GATE_LEVELS, mode="exhaustive",
                         max_schedules=100, reduction="sleep-set")
        assert result.reduction_ratio() >= 2.0

    def test_reduction_is_deterministic_and_worker_independent(self):
        spec = ProgramSetSpec.make("bank-transfer")
        serial = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="exhaustive", max_schedules=300,
                         reduction="sleep-set", workers=1, chunk_size=16)
        parallel = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                           mode="exhaustive", max_schedules=300,
                           reduction="sleep-set", workers=2, chunk_size=7)
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.executed_schedules() == parallel.executed_schedules()

    def test_reduction_also_applies_to_sampled_streams(self):
        spec = ProgramSetSpec.make("contention", transactions=3,
                                   operations_per_transaction=2, seed=1)
        full = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                       mode="sample", max_schedules=80, seed=3)
        reduced = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                          mode="sample", max_schedules=80, seed=3,
                          reduction="sleep-set")
        assert reduced.total_schedules() == full.total_schedules() == 80
        assert reduced.executed_schedules() <= full.executed_schedules()
        assert_identical_coverage(full, reduced,
                                  levels=(IsolationLevelName.READ_COMMITTED,))


class TestStreamingReducer:
    """Chunk-wise canonicalization must equal the one-shot execution plan."""

    def test_chunked_reduction_equals_build_execution_plan(self):
        from repro.explorer.reduction import StreamingReducer

        _, programs = build_program_set(ProgramSetSpec.make(
            "contention", transactions=3, items=3, hot_items=1,
            operations_per_transaction=1))
        schedules = schedule_space(programs, mode="exhaustive",
                                   max_schedules=1000).schedules
        plan = build_execution_plan(schedules, programs)

        for chunk_size in (1, 7, 64, len(schedules)):
            reducer = StreamingReducer(programs)
            assignment = []
            fresh_stream = []
            for start in range(0, len(schedules), chunk_size):
                fresh, slots = reducer.reduce(schedules[start:start + chunk_size])
                assignment.extend(slots)
                fresh_stream.extend(fresh)
            assert tuple(reducer.executed) == plan.executed, chunk_size
            assert tuple(assignment) == plan.assignment, chunk_size
            # Fresh representatives, concatenated across chunks, are exactly
            # the executed list — the contiguous-suffix property the
            # explorer's streaming assembly relies on.
            assert fresh_stream == reducer.executed
            assert reducer.covered == len(schedules)

    def test_streaming_reduction_never_materializes_the_stream(self):
        """explore(reduction=...) on a sampled stream keeps the space lazy."""
        spec = ProgramSetSpec.make("contention", transactions=4, items=6,
                                   hot_items=2, operations_per_transaction=2)
        result = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,
                                       IsolationLevelName.SNAPSHOT_ISOLATION),
                         mode="sample", max_schedules=300, seed=21,
                         reduction="sleep-set", chunk_size=32)
        assert result.space._materialized is None
        assert result.total_schedules() == 600
        assert result.executed_schedules() <= 600

    def test_streamed_reduction_matches_unreduced_coverage_on_samples(self):
        spec = ProgramSetSpec.make("contention", transactions=3, items=3,
                                   hot_items=1, operations_per_transaction=2)
        levels = (IsolationLevelName.READ_COMMITTED,
                  IsolationLevelName.SNAPSHOT_ISOLATION)
        full = explore(spec, levels=levels, mode="sample", max_schedules=200,
                       seed=3)
        reduced = explore(spec, levels=levels, mode="sample", max_schedules=200,
                          seed=3, reduction="sleep-set")
        assert coverage_mismatches(full, reduced, levels=levels) == []
