"""The cross-process classification cache: append-only log, monotonic freshness.

Regression coverage for the staleness bug in the earlier dict-based design:
the per-process snapshot memo considered itself fresh whenever ``len(proxy)``
was unchanged, so a concurrent worker that overwrote existing keys (same
size, new values) was never re-pulled.  The log design keys freshness on the
number of published batches — which grows monotonically with every publish —
so a publish can never be invisible to a later pull.
"""

from __future__ import annotations

import multiprocessing

from repro.core.isolation import IsolationLevelName
from repro.explorer import ProgramSetSpec, explore
from repro.explorer.memo import HistoryClassification
from repro.explorer.worker import (
    _SHARED_LOG_STATE,
    _publish_shared,
    _shared_snapshot,
)


def classification(tag: str) -> HistoryClassification:
    return HistoryClassification(shorthand=tag, serializable=True, phenomena=(),
                                 committed=(1,), aborted=())


class _TokenList(list):
    """A plain list masquerading as a manager proxy (stable token, no IPC)."""

    def __init__(self, token: str):
        super().__init__()
        self._token = token


class TestAppendOnlyLogProtocol:
    def test_same_size_republish_is_picked_up(self):
        """The historical bug: an overwrite that kept the entry count equal."""
        log = _TokenList("test-log-republish")
        _publish_shared(log, {"h1": classification("first")})
        first = _shared_snapshot(log)
        assert first["h1"].shorthand == "first"
        # A concurrent worker publishes a batch with the same key set — the
        # merged entry count does not change, only the batch count does.
        _publish_shared(log, {"h1": classification("second")})
        second = _shared_snapshot(log)
        assert second["h1"].shorthand == "second"

    def test_incremental_pull_consumes_each_batch_once(self):
        log = _TokenList("test-log-incremental")
        _publish_shared(log, {"a": classification("a")})
        assert set(_shared_snapshot(log)) == {"a"}
        _publish_shared(log, {"b": classification("b")})
        _publish_shared(log, {"c": classification("c")})
        merged = _shared_snapshot(log)
        assert set(merged) == {"a", "b", "c"}
        consumed, _, _ = _SHARED_LOG_STATE[str(log._token)]
        assert consumed == 3
        # A pull with nothing new leaves the cursor and the merge unchanged.
        again = _shared_snapshot(log)
        assert again == merged
        assert _SHARED_LOG_STATE[str(log._token)][0] == 3

    def test_plain_list_without_token_still_works(self):
        log = []
        _publish_shared(log, {"x": classification("x")})
        assert set(_shared_snapshot(log)) == {"x"}


class TestSharedCacheEndToEnd:
    def test_shared_log_changes_no_records(self):
        spec = ProgramSetSpec.make("contention", transactions=3, items=3,
                                   hot_items=2, operations_per_transaction=2)
        with_log = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                           mode="sample", max_schedules=48, seed=6, workers=2,
                           chunk_size=8, shared_cache=True)
        without = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                          mode="sample", max_schedules=48, seed=6, workers=2,
                          chunk_size=8, shared_cache=False)
        assert with_log.fingerprint() == without.fingerprint()

    def test_manager_list_proxy_round_trips(self):
        """The real proxy type: slice reads and appends behave like the fake."""
        with multiprocessing.Manager() as manager:
            log = manager.list()
            _publish_shared(log, {"h": classification("one")})
            snapshot = _shared_snapshot(log)
            assert snapshot["h"].shorthand == "one"
            _publish_shared(log, {"h": classification("two")})
            assert _shared_snapshot(log)["h"].shorthand == "two"


class TestSharedLogCap:
    """The size cap on the append-only logs: publishes are refused, not lost
    work — a dropped batch only means other processes re-derive those entries.
    """

    def test_publish_below_cap_succeeds(self, monkeypatch):
        monkeypatch.setenv("EXPLORER_SHARED_LOG_CAP", "3")
        log = []
        assert _publish_shared(log, {"a": classification("a"),
                                     "b": classification("b")})
        assert len(log) == 1

    def test_publish_over_cap_is_refused(self, monkeypatch):
        monkeypatch.setenv("EXPLORER_SHARED_LOG_CAP", "3")
        log = []
        assert _publish_shared(log, {"a": classification("a"),
                                     "b": classification("b")})
        refused = {"c": classification("c"), "d": classification("d")}
        assert not _publish_shared(log, refused)
        assert len(log) == 1  # nothing appended
        # a batch that still fits is accepted after a refusal
        assert _publish_shared(log, {"e": classification("e")})

    def test_cap_disabled_with_minus_one(self, monkeypatch):
        monkeypatch.setenv("EXPLORER_SHARED_LOG_CAP", "-1")
        log = []
        for index in range(50):
            batch = {f"h{index}": classification(str(index))}
            assert _publish_shared(log, batch)
        assert len(log) == 50

    def test_unparsable_cap_falls_back_to_default(self, monkeypatch):
        from repro.explorer.worker import SHARED_LOG_CAP_DEFAULT, _shared_log_cap
        monkeypatch.setenv("EXPLORER_SHARED_LOG_CAP", "not-a-number")
        assert _shared_log_cap() == SHARED_LOG_CAP_DEFAULT

    def test_eviction_is_surfaced_in_cache_stats(self, monkeypatch):
        """A capped run reports dropped publishes instead of hiding them."""
        monkeypatch.setenv("EXPLORER_SHARED_LOG_CAP", "1")
        spec = ProgramSetSpec.make("contention", transactions=3, items=3,
                                   hot_items=2, operations_per_transaction=2)
        result = explore(spec, levels=(IsolationLevelName.READ_COMMITTED,),
                         mode="sample", max_schedules=48, seed=6, workers=2,
                         chunk_size=8, shared_cache=True)
        stats = result.levels[IsolationLevelName.READ_COMMITTED].cache_stats
        assert stats.get("shared_evicted", 0) > 0

    def test_capped_run_changes_no_records(self, monkeypatch):
        """Dropping publishes is sound: the log is a cache, never the truth."""
        spec = ProgramSetSpec.make("contention", transactions=3, items=3,
                                   hot_items=2, operations_per_transaction=2)
        kwargs = dict(levels=(IsolationLevelName.READ_COMMITTED,),
                      mode="sample", max_schedules=48, seed=6, workers=2,
                      chunk_size=8, shared_cache=True)
        monkeypatch.setenv("EXPLORER_SHARED_LOG_CAP", "1")
        capped = explore(spec, **kwargs)
        monkeypatch.delenv("EXPLORER_SHARED_LOG_CAP")
        uncapped = explore(spec, **kwargs)
        assert capped.fingerprint() == uncapped.fingerprint()
