"""Schedule-space combinatorics: counting, enumeration, and seeded sampling."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.explorer.schedules import (
    count_interleavings,
    enumerate_interleavings,
    sample_interleavings,
    schedule_space,
)
from repro.workloads.program_sets import ProgramSetSpec, build_program_set


def multinomial(*counts: int) -> int:
    result = math.factorial(sum(counts))
    for count in counts:
        result //= math.factorial(count)
    return result


class TestCountInterleavings:
    def test_matches_the_multinomial_formula(self):
        assert count_interleavings([3, 3]) == multinomial(3, 3) == 20
        assert count_interleavings([3, 3, 3]) == multinomial(3, 3, 3) == 1680
        assert count_interleavings([2, 4, 5]) == multinomial(2, 4, 5)

    def test_degenerate_cases(self):
        assert count_interleavings([]) == 1
        assert count_interleavings([5]) == 1
        assert count_interleavings([0, 3]) == 1

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            count_interleavings([2, -1])


class TestEnumerate:
    def test_two_programs_complete_and_distinct(self):
        schedules = list(enumerate_interleavings([1, 2], [2, 2]))
        assert len(schedules) == multinomial(2, 2) == 6
        assert len(set(schedules)) == 6
        for schedule in schedules:
            assert Counter(schedule) == {1: 2, 2: 2}

    def test_three_programs_count_matches_formula(self):
        schedules = list(enumerate_interleavings([1, 2, 3], [2, 1, 3]))
        assert len(schedules) == multinomial(2, 1, 3)
        assert len(set(schedules)) == len(schedules)

    def test_lexicographic_by_transaction_id(self):
        schedules = list(enumerate_interleavings([2, 1], [1, 1]))
        assert schedules == [(1, 2), (2, 1)]

    def test_misaligned_arguments_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_interleavings([1, 2], [1]))


class TestSampling:
    def test_same_seed_same_sample(self):
        first = sample_interleavings([1, 2, 3], [3, 3, 3], 50, seed=11)
        second = sample_interleavings([1, 2, 3], [3, 3, 3], 50, seed=11)
        assert first == second

    def test_different_seeds_differ(self):
        assert (sample_interleavings([1, 2, 3], [3, 3, 3], 50, seed=1)
                != sample_interleavings([1, 2, 3], [3, 3, 3], 50, seed=2))

    def test_samples_are_valid_interleavings(self):
        for schedule in sample_interleavings([1, 2], [2, 3], 20, seed=5):
            assert Counter(schedule) == {1: 2, 2: 3}


class TestScheduleSpace:
    def _programs(self, name="increments", **params):
        _, programs = build_program_set(ProgramSetSpec.make(name, **params))
        return programs

    def test_auto_exhausts_small_spaces(self):
        space = schedule_space(self._programs(transactions=2), max_schedules=100)
        assert space.mode == "exhaustive"
        assert space.total == 20
        assert len(space) == 20
        assert len(set(space.schedules)) == 20

    def test_auto_samples_large_spaces(self):
        space = schedule_space(self._programs(transactions=5), max_schedules=100, seed=3)
        assert space.mode == "sample"
        assert space.total == multinomial(3, 3, 3, 3, 3)
        assert len(space) == 100

    def test_exhaustive_mode_rejects_oversized_spaces(self):
        with pytest.raises(ValueError):
            schedule_space(self._programs(transactions=5), mode="exhaustive",
                           max_schedules=10)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            schedule_space(self._programs(transactions=2), mode="everything")
