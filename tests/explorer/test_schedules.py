"""Schedule-space combinatorics: counting, enumeration, and seeded sampling."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.explorer.schedules import (
    _should_dedupe,
    count_interleavings,
    enumerate_interleavings,
    iter_sampled_interleavings,
    sample_interleavings,
    schedule_space,
)
from repro.workloads.program_sets import ProgramSetSpec, build_program_set


def multinomial(*counts: int) -> int:
    result = math.factorial(sum(counts))
    for count in counts:
        result //= math.factorial(count)
    return result


class TestCountInterleavings:
    def test_matches_the_multinomial_formula(self):
        assert count_interleavings([3, 3]) == multinomial(3, 3) == 20
        assert count_interleavings([3, 3, 3]) == multinomial(3, 3, 3) == 1680
        assert count_interleavings([2, 4, 5]) == multinomial(2, 4, 5)

    def test_degenerate_cases(self):
        assert count_interleavings([]) == 1
        assert count_interleavings([5]) == 1
        assert count_interleavings([0, 3]) == 1

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            count_interleavings([2, -1])


class TestEnumerate:
    def test_two_programs_complete_and_distinct(self):
        schedules = list(enumerate_interleavings([1, 2], [2, 2]))
        assert len(schedules) == multinomial(2, 2) == 6
        assert len(set(schedules)) == 6
        for schedule in schedules:
            assert Counter(schedule) == {1: 2, 2: 2}

    def test_three_programs_count_matches_formula(self):
        schedules = list(enumerate_interleavings([1, 2, 3], [2, 1, 3]))
        assert len(schedules) == multinomial(2, 1, 3)
        assert len(set(schedules)) == len(schedules)

    def test_lexicographic_by_transaction_id(self):
        schedules = list(enumerate_interleavings([2, 1], [1, 1]))
        assert schedules == [(1, 2), (2, 1)]

    def test_misaligned_arguments_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_interleavings([1, 2], [1]))


class TestSampling:
    def test_same_seed_same_sample(self):
        first = sample_interleavings([1, 2, 3], [3, 3, 3], 50, seed=11)
        second = sample_interleavings([1, 2, 3], [3, 3, 3], 50, seed=11)
        assert first == second

    def test_different_seeds_differ(self):
        assert (sample_interleavings([1, 2, 3], [3, 3, 3], 50, seed=1)
                != sample_interleavings([1, 2, 3], [3, 3, 3], 50, seed=2))

    def test_samples_are_valid_interleavings(self):
        for schedule in sample_interleavings([1, 2], [2, 3], 20, seed=5):
            assert Counter(schedule) == {1: 2, 2: 3}

    def test_samples_are_deduplicated(self):
        """A sample of a space barely larger than the budget has no duplicates."""
        # multinomial(2, 2) = 6; sampling 5 i.i.d. would almost surely repeat.
        sample = sample_interleavings([1, 2], [2, 2], 5, seed=7)
        assert len(sample) == 5
        assert len(set(sample)) == 5

    def test_oversampling_caps_at_the_space_size(self):
        sample = sample_interleavings([1, 2], [2, 2], 50, seed=7)
        assert sorted(sample) == sorted(enumerate_interleavings([1, 2], [2, 2]))

    def test_dedupe_off_streams_iid_draws(self):
        iid = list(iter_sampled_interleavings([1, 2], [2, 2], 50, seed=7,
                                              dedupe=False))
        assert len(iid) == 50
        assert len(set(iid)) < 50  # duplicates are expected i.i.d.

    def test_dedupe_policy(self):
        assert _should_dedupe(100, 1000)          # tracking is cheap
        assert not _should_dedupe(500_000, 10 ** 12)  # huge space, stream free

    def test_dedupe_policy_never_tracks_beyond_the_memory_bound(self):
        """The seen-set is hard-bounded by _DEDUPE_TRACK_MAX entries.

        A > _DEDUPE_TRACK_MAX sample of a space within 4x of the sample used
        to dedupe (duplicates are plausible there), which quietly built a
        seen-set of up to min(count, total) entries — far past the bound.
        Such samples now stream i.i.d.; only whole-space samples still dedupe
        above the bound, and those stream the exhaustive enumeration with no
        seen-set at all.
        """
        from repro.explorer.schedules import _DEDUPE_TRACK_MAX

        assert not _should_dedupe(_DEDUPE_TRACK_MAX + 1, 4 * _DEDUPE_TRACK_MAX)
        assert not _should_dedupe(500_000, 1_000_000)
        # At or under the bound: always tracked, seen-set <= count entries.
        assert _should_dedupe(_DEDUPE_TRACK_MAX, 10 ** 12)
        # Covering the whole space: deduped via exhaustive streaming, 0 entries.
        assert _should_dedupe(10 ** 7, 10 ** 7)
        assert _should_dedupe(10 ** 7, 10 ** 6)

    def test_whole_space_sample_above_bound_streams_without_seen_set(self):
        """count >= total dedupes by enumerating, even above the track bound."""
        # A tiny space stands in for the > _DEDUPE_TRACK_MAX regime: the
        # policy path is identical (count >= total), and the stream must be
        # the full distinct space.
        sample = list(iter_sampled_interleavings([1, 2], [2, 2], 300_000, seed=3))
        assert sorted(sample) == sorted(enumerate_interleavings([1, 2], [2, 2]))

    def test_sampling_streams_lazily(self):
        stream = iter_sampled_interleavings([1, 2, 3], [3, 3, 3], 10 ** 9, seed=0,
                                            dedupe=False)
        first = next(stream)
        assert Counter(first) == {1: 3, 2: 3, 3: 3}


class TestScheduleSpace:
    def _programs(self, name="increments", **params):
        _, programs = build_program_set(ProgramSetSpec.make(name, **params))
        return programs

    def test_auto_exhausts_small_spaces(self):
        space = schedule_space(self._programs(transactions=2), max_schedules=100)
        assert space.mode == "exhaustive"
        assert space.total == 20
        assert len(space) == 20
        assert len(set(space.schedules)) == 20

    def test_auto_samples_large_spaces(self):
        space = schedule_space(self._programs(transactions=5), max_schedules=100, seed=3)
        assert space.mode == "sample"
        assert space.total == multinomial(3, 3, 3, 3, 3)
        assert len(space) == 100

    def test_exhaustive_mode_rejects_oversized_spaces(self):
        with pytest.raises(ValueError):
            schedule_space(self._programs(transactions=5), mode="exhaustive",
                           max_schedules=10)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            schedule_space(self._programs(transactions=2), mode="everything")

    def test_space_streams_without_materializing(self):
        space = schedule_space(self._programs(transactions=2), max_schedules=100)
        streamed = list(space)
        assert space._materialized is None  # iteration alone never materializes
        assert len(streamed) == 20 == space.selected == len(space)
        assert tuple(streamed) == space.schedules  # property materializes, same stream
        assert space._materialized is not None

    def test_chunked_iteration_reassembles_the_stream(self):
        space = schedule_space(self._programs(transactions=3), max_schedules=2000)
        chunks = list(space.iter_chunks(64))
        assert [index for index, _ in chunks] == list(range(len(chunks)))
        assert all(len(chunk) == 64 for _, chunk in chunks[:-1])
        flattened = tuple(schedule for _, chunk in chunks for schedule in chunk)
        assert flattened == tuple(space)
        assert len(flattened) == 1680

    def test_chunk_size_validation(self):
        space = schedule_space(self._programs(transactions=2), max_schedules=100)
        with pytest.raises(ValueError):
            list(space.iter_chunks(0))

    def test_sampled_space_records_the_distinct_count(self):
        space = schedule_space(self._programs(transactions=2), mode="sample",
                               max_schedules=12, seed=5)
        assert space.mode == "sample"
        assert space.selected == 12
        assert space.distinct == 12
        assert len(set(space.schedules)) == 12

    def test_exhaustive_space_distinct_equals_total(self):
        space = schedule_space(self._programs(transactions=2), max_schedules=100)
        assert space.distinct == space.total == 20

    def test_same_recipe_streams_identically_every_iteration(self):
        space = schedule_space(self._programs(transactions=5), mode="sample",
                               max_schedules=40, seed=9)
        assert list(space) == list(space)
