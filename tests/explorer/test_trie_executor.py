"""The trie executor's determinism contract: byte-equal to from-scratch runs.

Every schedule executed through :class:`TrieExecutor` — whatever checkpoints
it reused, whatever order the batch was walked in — must produce an outcome
byte-identical to building a fresh testbed and running that schedule from
scratch.  Gated here for every engine level, for exhaustive (enumeration
order) and sampled (random order) streams, across checkpoint spacings, with
duplicate schedules in the stream, and across batch boundaries (the worker
reuses one executor for many chunks).
"""

from __future__ import annotations

import pytest

from repro.analysis.matrix import TABLE_4_LEVELS
from repro.core.isolation import IsolationLevelName
from repro.engine.scheduler import ScheduleRunner
from repro.explorer.schedules import schedule_space
from repro.explorer.trie_executor import TrieExecutor
from repro.testbed import make_engine
from repro.workloads.program_sets import ProgramSetSpec, build_program_set

ALL_LEVELS = TABLE_4_LEVELS + (IsolationLevelName.ORACLE_READ_CONSISTENCY,)

CONTENTION = ProgramSetSpec.make("contention", transactions=3, items=3,
                                 hot_items=2, operations_per_transaction=2)


def outcome_key(outcome):
    return (
        outcome.history.to_shorthand(),
        tuple(sorted((txn, state.value) for txn, state in outcome.statuses.items())),
        tuple(sorted(outcome.abort_reasons.items())),
        outcome.blocked_events,
        tuple((deadlock.cycle, deadlock.victim) for deadlock in outcome.deadlocks),
        outcome.stalled,
        outcome.database.snapshot(),
    )


def from_scratch_keys(spec, level, schedules):
    keys = []
    runner = None
    for schedule in schedules:
        database, programs = build_program_set(spec)
        engine = make_engine(database, level)
        if runner is None:
            runner = ScheduleRunner(engine, programs, schedule, collect_traces=False)
            keys.append(outcome_key(runner.run()))
        else:
            keys.append(outcome_key(runner.replay(engine, schedule)))
    return keys


def trie_keys(spec, level, schedules, **executor_kwargs):
    database, programs = build_program_set(spec)
    executor = TrieExecutor(database, programs, level, **executor_kwargs)
    keys = [None] * len(schedules)
    for index, outcome in executor.run_batch(schedules):
        keys[index] = outcome_key(outcome)
    return keys, executor


@pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda level: level.value)
def test_sampled_stream_byte_equal_to_from_scratch(level):
    _, programs = build_program_set(CONTENTION)
    schedules = schedule_space(programs, mode="sample", max_schedules=60,
                               seed=11).schedules
    expected = from_scratch_keys(CONTENTION, level, schedules)
    # This module gates the stepwise trie walk itself; the batch-drain kernel
    # (the default run_batch route) has its own suite in test_batch_kernel.py.
    actual, executor = trie_keys(CONTENTION, level, schedules,
                                 batch_kernel="off")
    assert actual == expected
    # Prefix sharing actually happened: strictly fewer slots executed than fed.
    assert executor.stats.slots_executed < executor.stats.slots_total
    assert executor.stats.schedules == len(schedules)


@pytest.mark.parametrize("spec", [
    ProgramSetSpec.make("bank-transfer"),
    ProgramSetSpec.make("write-skew"),
    ProgramSetSpec.make("dirty-abort"),
], ids=lambda spec: spec.name)
def test_exhaustive_stream_byte_equal_across_key_levels(spec):
    _, programs = build_program_set(spec)
    schedules = schedule_space(programs, mode="exhaustive",
                               max_schedules=500).schedules
    for level in (IsolationLevelName.READ_COMMITTED,
                  IsolationLevelName.SNAPSHOT_ISOLATION,
                  IsolationLevelName.SERIALIZABLE):
        expected = from_scratch_keys(spec, level, schedules)
        actual, executor = trie_keys(spec, level, schedules,
                                     batch_kernel="off")
        assert actual == expected, (spec.name, level)
        assert executor.stats.replayed_ratio < 1.0


def test_checkpoint_spacing_bounds_checkpoints_not_results():
    _, programs = build_program_set(CONTENTION)
    schedules = schedule_space(programs, mode="sample", max_schedules=40,
                               seed=5).schedules
    level = IsolationLevelName.READ_COMMITTED
    reference = None
    previous_checkpoints = None
    for spacing in (1, 3, 7):
        database, programs = build_program_set(CONTENTION)
        executor = TrieExecutor(database, programs, level,
                                checkpoint_spacing=spacing)
        keys = [None] * len(schedules)
        # Without batch lookahead the spacing grid governs checkpoint counts.
        for index, schedule in enumerate(schedules):
            keys[index] = outcome_key(executor.run_one(schedule))
        if reference is None:
            reference = keys
        else:
            assert keys == reference
        if previous_checkpoints is not None:
            assert executor.stats.checkpoints_created <= previous_checkpoints
        previous_checkpoints = executor.stats.checkpoints_created


def test_duplicate_schedules_in_the_stream():
    _, programs = build_program_set(CONTENTION)
    schedules = schedule_space(programs, mode="sample", max_schedules=10,
                               seed=2).schedules
    stream = schedules + schedules[:4] + (schedules[0],)
    level = IsolationLevelName.REPEATABLE_READ
    expected = from_scratch_keys(CONTENTION, level, stream)
    actual, _ = trie_keys(CONTENTION, level, stream)
    assert actual == expected


def test_executor_reuse_across_batches_matches_fresh_executors():
    """The worker keeps one executor per (spec, level) across chunks."""
    _, programs = build_program_set(CONTENTION)
    schedules = schedule_space(programs, mode="sample", max_schedules=48,
                               seed=9).schedules
    level = IsolationLevelName.SERIALIZABLE
    database, programs = build_program_set(CONTENTION)
    reused = TrieExecutor(database, programs, level)
    chunked = [None] * len(schedules)
    for start in range(0, len(schedules), 16):
        batch = schedules[start:start + 16]
        for index, outcome in reused.run_batch(batch):
            chunked[start + index] = outcome_key(outcome)
    assert chunked == from_scratch_keys(CONTENTION, level, schedules)


def test_unsorted_batch_matches_sorted_batch():
    _, programs = build_program_set(CONTENTION)
    schedules = schedule_space(programs, mode="sample", max_schedules=30,
                               seed=4).schedules
    level = IsolationLevelName.READ_COMMITTED
    sorted_keys, _ = trie_keys(CONTENTION, level, schedules)
    unsorted_keys = [None] * len(schedules)
    database, programs = build_program_set(CONTENTION)
    executor = TrieExecutor(database, programs, level)
    for index, outcome in executor.run_batch(schedules, sort=False):
        unsorted_keys[index] = outcome_key(outcome)
    assert unsorted_keys == sorted_keys


def test_rejects_invalid_configuration():
    database, programs = build_program_set(CONTENTION)
    with pytest.raises(ValueError):
        TrieExecutor(database, programs, IsolationLevelName.READ_COMMITTED,
                     checkpoint_spacing=0)
