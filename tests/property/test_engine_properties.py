"""Property-based tests over the engines: the invariants the paper's levels promise.

The key properties:

* Whatever the interleaving, the **locking SERIALIZABLE** engine produces
  serializable realized histories with none of the paper's phenomena.
* Whatever the interleaving, **Snapshot Isolation** never lets a committed
  transaction observe a non-snapshot state (readers see the balance invariant),
  never loses an update (first-committer-wins), and never blocks a read.
* Every engine keeps the database recoverable: aborted transactions leave no
  trace in the final state.
"""

from __future__ import annotations

import random
from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependency import is_serializable
from repro.core.isolation import IsolationLevelName
from repro.core.phenomena import (
    A5A_READ_SKEW,
    P0_DIRTY_WRITE,
    P1_DIRTY_READ,
    P2_FUZZY_READ,
    P4_LOST_UPDATE,
)
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from repro.engine.scheduler import ScheduleRunner
from repro.storage.database import Database
from repro.testbed import make_engine

COMMON_SETTINGS = settings(max_examples=60, deadline=None)

ITEMS = ("x", "y", "z")


def _database() -> Database:
    database = Database()
    for item in ITEMS:
        database.set_item(item, 100)
    return database


@st.composite
def workloads(draw):
    """A small set of read-modify-write programs plus a random interleaving."""
    transactions = draw(st.integers(min_value=2, max_value=3))
    programs: List[TransactionProgram] = []
    for txn in range(1, transactions + 1):
        steps = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            item = draw(st.sampled_from(ITEMS))
            steps.append(ReadItem(item, into=f"{item}_seen"))
            if draw(st.booleans()):
                delta = draw(st.integers(min_value=-5, max_value=5))
                steps.append(WriteItem(item, (
                    lambda name, d: (lambda ctx: ctx[f"{name}_seen"] + d)
                )(item, delta)))
        steps.append(Commit())
        programs.append(TransactionProgram(txn, steps))
    slots: List[int] = []
    for program in programs:
        slots.extend([program.txn] * len(program.steps))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    random.Random(seed).shuffle(slots)
    return programs, slots


@COMMON_SETTINGS
@given(workloads())
def test_locking_serializable_histories_are_serializable(workload):
    programs, interleaving = workload
    engine = make_engine(_database(), IsolationLevelName.SERIALIZABLE)
    outcome = ScheduleRunner(engine, programs, interleaving).run()
    assert not outcome.stalled
    assert is_serializable(outcome.history)
    for detector in (P0_DIRTY_WRITE, P1_DIRTY_READ, P2_FUZZY_READ, P4_LOST_UPDATE,
                     A5A_READ_SKEW):
        assert not detector.occurs_in(outcome.history)


@COMMON_SETTINGS
@given(workloads())
def test_every_locking_level_prevents_dirty_writes(workload):
    programs, interleaving = workload
    for level in (IsolationLevelName.READ_UNCOMMITTED,
                  IsolationLevelName.READ_COMMITTED,
                  IsolationLevelName.REPEATABLE_READ,
                  IsolationLevelName.SERIALIZABLE):
        engine = make_engine(_database(), level)
        outcome = ScheduleRunner(engine, programs, interleaving).run()
        assert not outcome.stalled
        assert not P0_DIRTY_WRITE.occurs_in(outcome.history), level


@COMMON_SETTINGS
@given(workloads())
def test_snapshot_isolation_never_blocks_and_never_loses_updates(workload):
    programs, interleaving = workload
    engine = make_engine(_database(), IsolationLevelName.SNAPSHOT_ISOLATION)
    outcome = ScheduleRunner(engine, programs, interleaving).run()
    assert not outcome.stalled
    assert outcome.blocked_events == 0
    # First-committer-wins: committed write sets never overlap in time, so a
    # lost update pattern can never involve two committed transactions.
    committed_history = outcome.history.committed_projection()
    assert not P4_LOST_UPDATE.occurs_in(committed_history)
    assert not P0_DIRTY_WRITE.occurs_in(committed_history)


@COMMON_SETTINGS
@given(workloads())
def test_aborted_transactions_leave_no_trace_under_locking(workload):
    programs, interleaving = workload
    database = _database()
    engine = make_engine(database, IsolationLevelName.SERIALIZABLE)
    outcome = ScheduleRunner(engine, programs, interleaving).run()
    # Replay only the committed programs serially on a fresh database: the
    # final states must agree (aborted transactions contributed nothing).
    replay = _database()
    replay_engine = make_engine(replay, IsolationLevelName.SERIALIZABLE)
    committed_programs = [p for p in programs if outcome.committed(p.txn)]
    if committed_programs:
        serial_slots = [p.txn for p in committed_programs for _ in p.steps]
        ScheduleRunner(replay_engine, committed_programs, serial_slots).run()
    # Compare only under a serializable outcome with a unique serial order to
    # avoid ambiguity: if the realized order differs, totals still match for
    # commutative increments, so compare the balance total.
    assert sum(database.items().values()) == sum(replay.items().values())


@COMMON_SETTINGS
@given(workloads())
def test_read_only_transactions_never_abort_under_snapshot_isolation(workload):
    programs, interleaving = workload
    read_only = {
        program.txn for program in programs
        if all(not isinstance(step, WriteItem) for step in program.steps)
    }
    engine = make_engine(_database(), IsolationLevelName.SNAPSHOT_ISOLATION)
    outcome = ScheduleRunner(engine, programs, interleaving).run()
    for txn in read_only:
        assert outcome.committed(txn)
