"""Property-based tests for the multiversion substrate.

Invariants under test:

* Version-store visibility is monotone and stable: what a snapshot timestamp
  sees never changes when later versions are installed, and a read at
  timestamp t sees the version with the largest commit timestamp <= t.
* Snapshot Isolation serial equivalence for disjoint writers: any interleaving
  of transactions whose write sets do not overlap commits them all and yields
  the same final state as running them serially.
* First-Committer-Wins safety: for any interleaving, at most one of two
  transactions writing the same item commits (unless one committed before the
  other began), so committed write sets never overlap in time.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mvcc.snapshot import SnapshotIsolationEngine
from repro.mvcc.version_store import VersionStore
from repro.storage.database import Database

COMMON_SETTINGS = settings(max_examples=80, deadline=None)

ITEMS = ("x", "y", "z")


@st.composite
def version_installs(draw) -> List[Tuple[str, int, int]]:
    """A sequence of (item, value, commit_ts) with strictly increasing timestamps."""
    count = draw(st.integers(min_value=0, max_value=8))
    installs: List[Tuple[str, int, int]] = []
    ts = 0
    for _ in range(count):
        ts += draw(st.integers(min_value=1, max_value=3))
        item = draw(st.sampled_from(ITEMS))
        value = draw(st.integers(min_value=-100, max_value=100))
        installs.append((item, value, ts))
    return installs


def _base_database() -> Database:
    database = Database()
    for item in ITEMS:
        database.set_item(item, 0)
    return database


@COMMON_SETTINGS
@given(version_installs(), st.integers(min_value=0, max_value=30))
def test_version_store_reads_latest_version_at_or_before_timestamp(installs, as_of):
    store = VersionStore(_base_database())
    for txn, (item, value, ts) in enumerate(installs, start=1):
        store.install_item(item, value, ts, txn)
    for item in ITEMS:
        expected = 0
        for installed_item, value, ts in installs:
            if installed_item == item and ts <= as_of:
                expected = value
        observed, _ = store.read_item(item, as_of)
        assert observed == expected


@COMMON_SETTINGS
@given(version_installs(), st.integers(min_value=0, max_value=10))
def test_snapshot_visibility_is_stable_under_later_installs(installs, snapshot_ts):
    """Installing more versions never changes what an earlier snapshot sees."""
    store = VersionStore(_base_database())
    observed_before: Dict[str, object] = {}
    midpoint = len(installs) // 2
    for txn, (item, value, ts) in enumerate(installs[:midpoint], start=1):
        store.install_item(item, value, ts, txn)
    for item in ITEMS:
        observed_before[item] = store.read_item(item, snapshot_ts)[0]
    for txn, (item, value, ts) in enumerate(installs[midpoint:], start=midpoint + 1):
        store.install_item(item, value, ts, txn)
    for item in ITEMS:
        later_installs_before_snapshot = [
            ts for (i, _, ts) in installs[midpoint:] if i == item and ts <= snapshot_ts
        ]
        if not later_installs_before_snapshot:
            assert store.read_item(item, snapshot_ts)[0] == observed_before[item]


@st.composite
def disjoint_write_sets(draw) -> List[List[Tuple[str, int]]]:
    """Write sets for up to three transactions over pairwise-distinct items."""
    assignment = draw(st.permutations(ITEMS))
    transactions = draw(st.integers(min_value=1, max_value=3))
    write_sets: List[List[Tuple[str, int]]] = []
    for index in range(transactions):
        value = draw(st.integers(min_value=-50, max_value=50))
        write_sets.append([(assignment[index], value)])
    return write_sets


@COMMON_SETTINGS
@given(disjoint_write_sets(), st.randoms(use_true_random=False))
def test_disjoint_writers_all_commit_and_match_serial_execution(write_sets, rng):
    """Under SI, transactions with disjoint write sets never abort, and the
    final state equals a serial execution of the same transactions."""
    engine = SnapshotIsolationEngine(_base_database())
    for txn in range(1, len(write_sets) + 1):
        engine.begin(txn)
    pending = {txn: list(writes) for txn, writes in enumerate(write_sets, start=1)}
    order = [txn for txn, writes in pending.items() for _ in writes]
    rng.shuffle(order)
    for txn in order:
        item, value = pending[txn].pop(0)
        assert engine.write(txn, item, value).is_ok
    commit_order = sorted(pending)
    rng.shuffle(commit_order)
    for txn in commit_order:
        assert engine.commit(txn).is_ok

    serial = _base_database()
    for txn, writes in enumerate(write_sets, start=1):
        for item, value in writes:
            serial.set_item(item, value)
    assert engine.database.items() == serial.items()


@COMMON_SETTINGS
@given(st.lists(st.sampled_from(ITEMS), min_size=1, max_size=3, unique=True),
       st.integers(min_value=2, max_value=4))
def test_first_committer_wins_admits_exactly_one_overlapping_writer(items, writers):
    """All writers share the same write set and the same snapshot: exactly one
    of them commits, the rest are aborted by First-Committer-Wins."""
    engine = SnapshotIsolationEngine(_base_database())
    for txn in range(1, writers + 1):
        engine.begin(txn)
    for txn in range(1, writers + 1):
        for item in items:
            engine.write(txn, item, txn)
    outcomes = [engine.commit(txn) for txn in range(1, writers + 1)]
    committed = [index + 1 for index, result in enumerate(outcomes) if result.is_ok]
    assert len(committed) == 1
    assert engine.fcw_aborts == writers - 1
    winner = committed[0]
    for item in items:
        assert engine.database.get_item(item) == winner
