"""Property-based tests over histories, the parser, and the dependency graph."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.dependency import (
    build_dependency_graph,
    histories_equivalent,
    is_serializable,
)
from repro.core.history import parse_history
from repro.core.phenomena import ALL_PHENOMENA, detect_all

from .strategies import histories, serial_histories

COMMON_SETTINGS = settings(max_examples=120, deadline=None)


@COMMON_SETTINGS
@given(histories())
def test_shorthand_round_trips(history):
    """Parsing a rendered history reproduces it exactly."""
    assert parse_history(history.to_shorthand()) == history


@COMMON_SETTINGS
@given(serial_histories())
def test_serial_histories_are_serializable(history):
    """The Serializability Theorem's easy direction: serial ⇒ serializable."""
    assert history.is_serial()
    assert is_serializable(history)


@COMMON_SETTINGS
@given(serial_histories())
def test_serial_histories_exhibit_no_phenomena(history):
    """None of the paper's phenomena can occur in a serial history (Section 2.2)."""
    occurrences = detect_all(history)
    assert all(not found for found in occurrences.values()), occurrences


@COMMON_SETTINGS
@given(histories())
def test_dependency_graph_nodes_are_committed_transactions(history):
    graph = build_dependency_graph(history)
    assert set(graph.nodes) == history.committed_transactions()
    for edge in graph.edges:
        assert edge.source in graph.nodes and edge.target in graph.nodes
        assert edge.source != edge.target


@COMMON_SETTINGS
@given(histories())
def test_serializable_histories_have_a_witness_serial_order(history):
    graph = build_dependency_graph(history)
    if graph.is_acyclic():
        order = graph.topological_order()
        assert order is not None
        assert set(order) == set(graph.nodes)
    else:
        assert graph.topological_order() is None


@COMMON_SETTINGS
@given(histories())
def test_equivalence_is_reflexive(history):
    assert histories_equivalent(history, history)


@COMMON_SETTINGS
@given(histories())
def test_committed_projection_preserves_serializability_verdict(history):
    """Serializability is defined over committed transactions only, so the
    projection must give the same verdict as the original history."""
    assert is_serializable(history) == is_serializable(history.committed_projection())


@COMMON_SETTINGS
@given(histories())
def test_detectors_report_occurrences_with_valid_indices(history):
    for code, occurrences in detect_all(history).items():
        detector = ALL_PHENOMENA[code]
        assert detector.occurs_in(history) == bool(occurrences)
        for occurrence in occurrences:
            assert occurrence.phenomenon == code
            for index in occurrence.indices:
                assert 0 <= index < len(history)
            assert len(set(occurrence.transactions)) == len(occurrence.transactions)
