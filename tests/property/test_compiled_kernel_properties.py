"""Property-based gates: compiled kernel vs stepwise, detector fast paths.

Two invariants the PR 5 hot-loop work must never bend:

* The compiled slot-program step kernel is byte-equal to the stepwise API for
  random program sets, random interleavings, and every engine level.
* Every detector's boolean fast path (``occurs_in``) agrees with its
  occurrence enumerator (``find``) on random histories.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isolation import IsolationLevelName
from repro.core.phenomena import ALL_PHENOMENA, HistoryIndex
from repro.engine.programs import compile_programs
from repro.engine.scheduler import ScheduleRunner
from repro.storage.database import Database
from repro.testbed import make_engine

from .strategies import ITEMS, histories, interleavings_for, transaction_programs

KERNEL_LEVELS = (
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.CURSOR_STABILITY,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SERIALIZABLE,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.ORACLE_READ_CONSISTENCY,
)


def _fresh_database() -> Database:
    database = Database()
    for index, item in enumerate(ITEMS):
        database.set_item(item, index * 10)
    return database


def _outcome_key(outcome):
    return (
        outcome.history.to_shorthand(),
        tuple(sorted((txn, state.value) for txn, state in outcome.statuses.items())),
        tuple(sorted((txn, tuple(sorted(ctx.items())))
                     for txn, ctx in outcome.contexts.items())),
        tuple(sorted(outcome.abort_reasons.items())),
        outcome.blocked_events,
        tuple((d.cycle, d.victim) for d in outcome.deadlocks),
        tuple((t.txn, t.step, t.status.value, t.reason) for t in outcome.traces),
        outcome.stalled,
    )


@st.composite
def program_sets_with_interleavings(draw):
    programs = draw(transaction_programs())
    interleaving = draw(interleavings_for(programs))
    level = draw(st.sampled_from(KERNEL_LEVELS))
    return programs, interleaving, level


@settings(max_examples=60, deadline=None)
@given(program_sets_with_interleavings())
def test_compiled_kernel_byte_equal_to_stepwise(case):
    programs, interleaving, level = case
    stepwise = ScheduleRunner(make_engine(_fresh_database(), level), programs,
                              interleaving, compiled=False).run()
    compiled = ScheduleRunner(make_engine(_fresh_database(), level), programs,
                              interleaving, compiled=True).run()
    assert _outcome_key(stepwise) == _outcome_key(compiled)


@settings(max_examples=60, deadline=None)
@given(transaction_programs())
def test_compile_pass_covers_every_step_with_consistent_footprints(programs):
    compiled = compile_programs(programs)
    by_txn = compiled.by_txn()
    reverse = {index: name for name, index in compiled.item_ids.items()}
    for program in programs:
        table = by_txn[program.txn]
        assert len(table) == len(program)
        footprints = program.footprints()
        for position, footprint in enumerate(footprints):
            assert table.opaque[position] == footprint.opaque
            if not footprint.opaque:
                assert {reverse[i] for i in table.read_ids[position]} == set(footprint.reads)
                assert {reverse[i] for i in table.write_ids[position]} == set(footprint.writes)


@settings(max_examples=120, deadline=None)
@given(histories())
def test_occurs_in_fast_paths_agree_with_find(history):
    index = HistoryIndex(history)
    for code, detector in ALL_PHENOMENA.items():
        assert detector.occurs_in(history, index) == bool(
            detector.find(history, index)), code
