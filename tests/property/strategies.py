"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from typing import List

from hypothesis import strategies as st

from repro.core.history import History
from repro.core.operations import Operation, OperationKind

ITEMS = ("x", "y", "z")


@st.composite
def transaction_bodies(draw, max_ops: int = 4):
    """Per-transaction operation bodies: a few reads/writes then commit/abort."""
    transactions = draw(st.integers(min_value=1, max_value=3))
    bodies: List[List[Operation]] = []
    for txn in range(1, transactions + 1):
        length = draw(st.integers(min_value=1, max_value=max_ops))
        ops: List[Operation] = []
        for _ in range(length):
            item = draw(st.sampled_from(ITEMS))
            kind = draw(st.sampled_from((OperationKind.READ, OperationKind.WRITE)))
            ops.append(Operation(kind, txn, item=item))
        terminal = draw(st.sampled_from((OperationKind.COMMIT, OperationKind.COMMIT,
                                         OperationKind.COMMIT, OperationKind.ABORT)))
        ops.append(Operation(terminal, txn))
        bodies.append(ops)
    return bodies


@st.composite
def histories(draw, max_ops: int = 4) -> History:
    """Random complete histories: random interleavings of random transactions."""
    bodies = draw(transaction_bodies(max_ops=max_ops))
    remaining = [list(body) for body in bodies]
    merged: List[Operation] = []
    while any(remaining):
        candidates = [index for index, body in enumerate(remaining) if body]
        choice = draw(st.sampled_from(candidates))
        merged.append(remaining[choice].pop(0))
    return History(merged)


@st.composite
def serial_histories(draw, max_ops: int = 4) -> History:
    """Histories that execute transactions strictly one after another."""
    bodies = draw(transaction_bodies(max_ops=max_ops))
    order = draw(st.permutations(range(len(bodies))))
    merged: List[Operation] = []
    for index in order:
        merged.extend(bodies[index])
    return History(merged)
