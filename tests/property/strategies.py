"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st

from repro.core.history import History
from repro.core.operations import Operation, OperationKind
from repro.engine.programs import (
    Abort,
    Commit,
    CompiledProgramSet,
    ReadItem,
    TransactionProgram,
    WriteItem,
    compile_programs,
)

ITEMS = ("x", "y", "z")


@st.composite
def transaction_bodies(draw, max_ops: int = 4):
    """Per-transaction operation bodies: a few reads/writes then commit/abort."""
    transactions = draw(st.integers(min_value=1, max_value=3))
    bodies: List[List[Operation]] = []
    for txn in range(1, transactions + 1):
        length = draw(st.integers(min_value=1, max_value=max_ops))
        ops: List[Operation] = []
        for _ in range(length):
            item = draw(st.sampled_from(ITEMS))
            kind = draw(st.sampled_from((OperationKind.READ, OperationKind.WRITE)))
            ops.append(Operation(kind, txn, item=item))
        terminal = draw(st.sampled_from((OperationKind.COMMIT, OperationKind.COMMIT,
                                         OperationKind.COMMIT, OperationKind.ABORT)))
        ops.append(Operation(terminal, txn))
        bodies.append(ops)
    return bodies


@st.composite
def histories(draw, max_ops: int = 4) -> History:
    """Random complete histories: random interleavings of random transactions."""
    bodies = draw(transaction_bodies(max_ops=max_ops))
    remaining = [list(body) for body in bodies]
    merged: List[Operation] = []
    while any(remaining):
        candidates = [index for index, body in enumerate(remaining) if body]
        choice = draw(st.sampled_from(candidates))
        merged.append(remaining[choice].pop(0))
    return History(merged)


@st.composite
def serial_histories(draw, max_ops: int = 4) -> History:
    """Histories that execute transactions strictly one after another."""
    bodies = draw(transaction_bodies(max_ops=max_ops))
    order = draw(st.permutations(range(len(bodies))))
    merged: List[Operation] = []
    for index in order:
        merged.extend(bodies[index])
    return History(merged)


@st.composite
def transaction_programs(draw, max_transactions: int = 3,
                         max_ops: int = 3) -> List[TransactionProgram]:
    """Random executable program sets: reads/writes over shared items, then a
    terminal (mostly commit).  Value specs mix literals and context-derived
    callables, so compiled WRITE steps exercise both resolution paths."""
    count = draw(st.integers(min_value=1, max_value=max_transactions))
    programs: List[TransactionProgram] = []
    for txn in range(1, count + 1):
        steps = []
        length = draw(st.integers(min_value=1, max_value=max_ops))
        for position in range(length):
            item = draw(st.sampled_from(ITEMS))
            if draw(st.booleans()):
                steps.append(ReadItem(item, into=f"v{position}"))
            else:
                if draw(st.booleans()):
                    steps.append(WriteItem(item, value=draw(
                        st.integers(min_value=-5, max_value=5))))
                else:
                    # Read-modify-write through the per-transaction context.
                    bound = f"v{draw(st.integers(min_value=0, max_value=max(0, position - 1)))}"
                    steps.append(WriteItem(
                        item,
                        value=(lambda ctx, key=bound: (ctx.get(key) or 0) + 1)))
        terminal = draw(st.sampled_from((Commit, Commit, Commit, Abort)))
        steps.append(terminal())
        programs.append(TransactionProgram(txn, steps))
    return programs


@st.composite
def interleavings_for(draw, programs: List[TransactionProgram]) -> Tuple[int, ...]:
    """A random complete interleaving of the programs' slots."""
    remaining = {program.txn: len(program) for program in programs}
    slots: List[int] = []
    while any(remaining.values()):
        candidates = [txn for txn, left in remaining.items() if left]
        choice = draw(st.sampled_from(candidates))
        remaining[choice] -= 1
        slots.append(choice)
    return tuple(slots)


@st.composite
def compiled_program_sets(draw, max_transactions: int = 3,
                          max_ops: int = 3) -> Tuple[List[TransactionProgram],
                                                     CompiledProgramSet]:
    """A random program set together with its compiled step tables."""
    programs = draw(transaction_programs(max_transactions=max_transactions,
                                         max_ops=max_ops))
    return programs, compile_programs(programs)
