"""Unit tests for the anomaly-matrix machinery (repro.analysis.matrix)."""

from __future__ import annotations


from repro.analysis.matrix import (
    EXPECTED_TABLE_4,
    TABLE_4_COLUMNS,
    TABLE_4_LEVELS,
    compute_phenomenon_table,
    compute_table4_row,
    default_history_corpus,
    phenomenon_level_profile,
    variant_manifestation_profile,
)
from repro.core.isolation import (
    ANSI_STRICT_LEVELS,
    CORRECTED_LEVELS,
    IsolationLevelName,
    Possibility,
    TABLE_1,
    TABLE_3,
)
from repro.testbed import engine_factory


class TestExpectedTable4:
    def test_shape_matches_the_paper(self):
        assert set(EXPECTED_TABLE_4) == set(TABLE_4_LEVELS)
        for row in EXPECTED_TABLE_4.values():
            assert set(row) == set(TABLE_4_COLUMNS)

    def test_p0_not_possible_everywhere(self):
        for row in EXPECTED_TABLE_4.values():
            assert row["P0"] is Possibility.NOT_POSSIBLE

    def test_serializable_row_is_all_not_possible(self):
        row = EXPECTED_TABLE_4[IsolationLevelName.SERIALIZABLE]
        assert all(value is Possibility.NOT_POSSIBLE for value in row.values())


class TestComputedRows:
    def test_read_committed_row_matches_the_paper(self):
        row = compute_table4_row(engine_factory(IsolationLevelName.READ_COMMITTED))
        assert row == EXPECTED_TABLE_4[IsolationLevelName.READ_COMMITTED]

    def test_snapshot_isolation_row_matches_the_paper(self):
        row = compute_table4_row(engine_factory(IsolationLevelName.SNAPSHOT_ISOLATION))
        assert row == EXPECTED_TABLE_4[IsolationLevelName.SNAPSHOT_ISOLATION]

    def test_variant_profile_is_finer_than_the_row(self):
        rr = variant_manifestation_profile(IsolationLevelName.REPEATABLE_READ)
        si = variant_manifestation_profile(IsolationLevelName.SNAPSHOT_ISOLATION)
        # Both rows say "phantoms possible", but through different variants.
        assert ("P3", "employee-count-H3") in rr
        assert ("P3", "employee-count-H3") not in si
        assert ("P3", "disjoint-inserts-task-hours") in si
        assert ("A5B", "plain-reads") in si
        assert ("A5B", "plain-reads") not in rr

    def test_phenomenon_level_profile_excludes_forbidden_patterns(self):
        anomaly_ser = ANSI_STRICT_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]
        profile = phenomenon_level_profile(anomaly_ser)
        # The strict definition forbids A1/A2, so those scenario variants drop out...
        assert ("P1", "read-of-rolled-back-write") not in profile
        assert ("P2", "plain-reread") not in profile
        # ...but the inconsistent-analysis and write-skew variants remain.
        assert ("P1", "inconsistent-analysis-H1") in profile
        assert ("A5B", "plain-reads") in profile


class TestPhenomenonTables:
    def test_table3_possible_cells_are_achievable(self):
        corpus = default_history_corpus(seed=5, count=150)
        measured = compute_phenomenon_table(
            CORRECTED_LEVELS, ("P0", "P1", "P2", "P3"), corpus)
        assert measured == TABLE_3

    def test_table1_broad_interpretation_matches(self):
        from repro.core.isolation import ANSI_BROAD_LEVELS
        corpus = default_history_corpus(seed=5, count=150)
        measured = compute_phenomenon_table(
            ANSI_BROAD_LEVELS, ("P1", "P2", "P3"), corpus)
        assert measured == TABLE_1

    def test_forbidden_cells_are_never_possible_regardless_of_corpus(self):
        corpus = default_history_corpus(seed=1, count=30)
        measured = compute_phenomenon_table(CORRECTED_LEVELS, ("P0", "P1"), corpus)
        for row in measured.values():
            assert row["P0"] is Possibility.NOT_POSSIBLE

    def test_default_corpus_includes_the_catalogue(self):
        corpus = default_history_corpus(count=10)
        names = {history.name for history in corpus if history.name}
        assert {"H1", "H2", "H3", "H4", "H5"} <= names
