"""Unit tests for the ASCII table renderers (repro.analysis.report)."""

from __future__ import annotations

from repro.analysis.report import (
    matrix_matches,
    render_comparison,
    render_possibility_matrix,
    render_table,
)
from repro.core.isolation import IsolationLevelName, Possibility


class TestRenderTable:
    def test_columns_are_aligned(self):
        text = render_table(["a", "long header"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_title_is_prepended(self):
        text = render_table(["a"], [["1"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_non_string_cells_are_stringified(self):
        text = render_table(["n"], [[42]])
        assert "42" in text


class TestPossibilityMatrix:
    MATRIX = {
        IsolationLevelName.READ_COMMITTED: {
            "P1": Possibility.NOT_POSSIBLE, "P2": Possibility.POSSIBLE,
        },
        IsolationLevelName.SERIALIZABLE: {
            "P1": Possibility.NOT_POSSIBLE, "P2": Possibility.NOT_POSSIBLE,
        },
    }

    def test_levels_and_cells_are_rendered(self):
        text = render_possibility_matrix(self.MATRIX, ["P1", "P2"])
        assert "READ COMMITTED" in text
        assert "Possible" in text

    def test_comparison_marks_mismatches(self):
        measured = {
            IsolationLevelName.READ_COMMITTED: {
                "P1": Possibility.POSSIBLE, "P2": Possibility.POSSIBLE,
            },
            IsolationLevelName.SERIALIZABLE: {
                "P1": Possibility.NOT_POSSIBLE, "P2": Possibility.NOT_POSSIBLE,
            },
        }
        text = render_comparison(self.MATRIX, measured, ["P1", "P2"])
        assert "!" in text and "paper:" in text

    def test_comparison_without_mismatches_has_no_flags(self):
        text = render_comparison(self.MATRIX, self.MATRIX, ["P1", "P2"])
        assert "!" not in text


class TestMatrixMatches:
    def test_identical_matrices_match(self):
        ok, mismatches = matrix_matches(TestPossibilityMatrix.MATRIX,
                                        TestPossibilityMatrix.MATRIX)
        assert ok and not mismatches

    def test_cell_differences_are_reported(self):
        measured = {
            IsolationLevelName.READ_COMMITTED: {
                "P1": Possibility.POSSIBLE, "P2": Possibility.POSSIBLE,
            },
            IsolationLevelName.SERIALIZABLE: {
                "P1": Possibility.NOT_POSSIBLE, "P2": Possibility.NOT_POSSIBLE,
            },
        }
        ok, mismatches = matrix_matches(TestPossibilityMatrix.MATRIX, measured)
        assert not ok
        assert any("P1" in m for m in mismatches)

    def test_missing_rows_are_reported(self):
        ok, mismatches = matrix_matches(TestPossibilityMatrix.MATRIX, {})
        assert not ok and len(mismatches) == 2
