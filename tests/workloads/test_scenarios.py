"""Unit tests for the anomaly scenarios (repro.workloads.scenarios)."""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName, Possibility
from repro.testbed import engine_factory
from repro.workloads.scenarios import (
    ALL_SCENARIOS,
    AnomalyScenario,
    evaluate_scenario,
    run_variant,
    scenario_by_code,
)

RU = engine_factory(IsolationLevelName.READ_UNCOMMITTED)
RC = engine_factory(IsolationLevelName.READ_COMMITTED)
CS = engine_factory(IsolationLevelName.CURSOR_STABILITY)
RR = engine_factory(IsolationLevelName.REPEATABLE_READ)
SER = engine_factory(IsolationLevelName.SERIALIZABLE)
SI = engine_factory(IsolationLevelName.SNAPSHOT_ISOLATION)


class TestScenarioRegistry:
    def test_all_table4_columns_have_scenarios(self):
        assert [scenario.code for scenario in ALL_SCENARIOS] == [
            "P0", "P1", "P4C", "P4", "P2", "P3", "A5A", "A5B"]

    def test_lookup_by_code(self):
        assert scenario_by_code("p4c").name == "Cursor Lost Update"
        with pytest.raises(KeyError):
            scenario_by_code("P9")

    def test_variant_lookup(self):
        scenario = scenario_by_code("P2")
        assert scenario.variant("plain-reread").name == "plain-reread"
        with pytest.raises(KeyError):
            scenario.variant("nope")

    def test_every_variant_has_interleaving_and_description(self):
        for scenario in ALL_SCENARIOS:
            assert scenario.variants
            for variant in scenario.variants:
                assert variant.interleaving
                assert variant.description


class TestVariantExecution:
    def test_variants_never_stall(self):
        for scenario in ALL_SCENARIOS:
            for variant in scenario.variants:
                for factory in (RU, RC, CS, RR, SER, SI):
                    result = run_variant(variant, factory, scenario.code)
                    assert not result.outcome.stalled

    def test_dirty_read_manifests_under_read_uncommitted_only(self):
        scenario = scenario_by_code("P1")
        assert evaluate_scenario(scenario, RU) is Possibility.POSSIBLE
        assert evaluate_scenario(scenario, RC) is Possibility.NOT_POSSIBLE
        assert evaluate_scenario(scenario, SI) is Possibility.NOT_POSSIBLE

    def test_lost_update_sometimes_possible_under_cursor_stability(self):
        scenario = scenario_by_code("P4")
        assert evaluate_scenario(scenario, CS) is Possibility.SOMETIMES_POSSIBLE
        assert evaluate_scenario(scenario, RC) is Possibility.POSSIBLE
        assert evaluate_scenario(scenario, RR) is Possibility.NOT_POSSIBLE
        assert evaluate_scenario(scenario, SI) is Possibility.NOT_POSSIBLE

    def test_cursor_lost_update_prevented_by_cursor_stability(self):
        scenario = scenario_by_code("P4C")
        assert evaluate_scenario(scenario, RC) is Possibility.POSSIBLE
        assert evaluate_scenario(scenario, CS) is Possibility.NOT_POSSIBLE

    def test_phantom_sometimes_possible_under_snapshot_isolation(self):
        scenario = scenario_by_code("P3")
        assert evaluate_scenario(scenario, SI) is Possibility.SOMETIMES_POSSIBLE
        assert evaluate_scenario(scenario, RR) is Possibility.POSSIBLE
        assert evaluate_scenario(scenario, SER) is Possibility.NOT_POSSIBLE

    def test_write_skew_distinguishes_snapshot_from_repeatable_read(self):
        scenario = scenario_by_code("A5B")
        assert evaluate_scenario(scenario, SI) is Possibility.POSSIBLE
        assert evaluate_scenario(scenario, RR) is Possibility.NOT_POSSIBLE

    def test_read_skew_prevented_by_snapshot_isolation(self):
        scenario = scenario_by_code("A5A")
        assert evaluate_scenario(scenario, SI) is Possibility.NOT_POSSIBLE
        assert evaluate_scenario(scenario, RC) is Possibility.POSSIBLE

    def test_dirty_write_prevented_everywhere_above_degree0(self):
        scenario = scenario_by_code("P0")
        degree0 = engine_factory(IsolationLevelName.DEGREE_0)
        assert evaluate_scenario(scenario, degree0) is Possibility.POSSIBLE
        for factory in (RU, RC, CS, RR, SER, SI):
            assert evaluate_scenario(scenario, factory) is Possibility.NOT_POSSIBLE

    def test_serializable_prevents_every_scenario(self):
        for scenario in ALL_SCENARIOS:
            assert evaluate_scenario(scenario, SER) is Possibility.NOT_POSSIBLE

    def test_variant_results_expose_outcome_details(self):
        scenario = scenario_by_code("P4")
        result = run_variant(scenario.variants[0], RC, scenario.code)
        assert result.manifested
        assert result.engine_name == "Locking READ COMMITTED"
        assert result.outcome.all_committed(1, 2)
        assert result.outcome.database.get_item("x") == 130

    def test_fresh_databases_per_run(self):
        scenario = scenario_by_code("P4")
        first = run_variant(scenario.variants[0], RC, scenario.code)
        second = run_variant(scenario.variants[0], RC, scenario.code)
        assert first.outcome.database is not second.outcome.database
        assert first.manifested == second.manifested

    def test_curated_runs_report_not_stalled(self):
        scenario = scenario_by_code("P4")
        result = run_variant(scenario.variants[0], RC, scenario.code)
        assert result.stalled is False

    def test_run_variant_accepts_an_interleaving_override(self):
        """The explorer replays arbitrary schedules through run_variant."""
        scenario = scenario_by_code("P4")
        variant = scenario.variants[0]
        # A serial schedule: T1 runs to completion before T2 starts, so the
        # lost update cannot manifest even at READ COMMITTED.
        serial = run_variant(variant, RC, scenario.code,
                             interleaving=[1, 1, 1, 2, 2, 2])
        assert not serial.manifested
        assert serial.outcome.database.get_item("x") == 150
        # The curated adversarial schedule still manifests.
        curated = run_variant(variant, RC, scenario.code)
        assert curated.manifested

    def test_empty_scenario_raises_instead_of_reporting_possible(self):
        """all([]) is True — an empty scenario must not claim POSSIBLE."""
        empty = AnomalyScenario(code="PX", name="empty", description="",
                                variants=[])
        with pytest.raises(ValueError, match="no variants"):
            evaluate_scenario(empty, RC)
