"""Stalled and deadlocked variant handling across every Table 4 level.

``run_variant`` used to raise ``RuntimeError`` the moment a schedule stalled,
which was survivable for the 14 curated interleavings (none stall) but fatal
for explorer-driven runs, where blocked and deadlocked interleavings are the
common case under locking engines.  These tests pin the fixed contract:

* a stalled run returns a :class:`VariantResult` with ``stalled=True`` and
  ``manifested=False`` — the ``manifests`` predicate is never consulted;
* a deadlocked run resolves through victim abort, returns normally, and flows
  through ``manifests`` (whose commit guards make it non-manifesting);
* neither ever raises, under any level of ``TABLE_4_LEVELS``.
"""

from __future__ import annotations

import pytest

from repro.analysis.matrix import TABLE_4_LEVELS
from repro.core.isolation import IsolationLevelName
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from repro.storage.database import Database
from repro.testbed import engine_factory
from repro.workloads.scenarios import ScenarioVariant, run_variant

#: Levels whose plain reads take (short or long) shared locks: a read of an
#: item write-locked by a transaction that never terminates can only stall.
_READ_LOCKING_LEVELS = (
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.CURSOR_STABILITY,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SERIALIZABLE,
)


def _one_item_database() -> Database:
    database = Database()
    database.set_item("x", 100)
    return database


def _stalling_variant() -> ScenarioVariant:
    """A writer that never terminates, and a reader that wants its item.

    The writer program has no Commit/Abort step, so its long exclusive lock
    on x is never released; any level whose reads take shared locks wedges
    with no deadlock cycle to break — the runner's stall case.
    """
    return ScenarioVariant(
        name="hung-writer",
        build_database=_one_item_database,
        build_programs=lambda: [
            TransactionProgram(1, [WriteItem("x", 1)], label="writes, never ends"),
            TransactionProgram(2, [ReadItem("x", into="seen"), Commit()],
                               label="reader"),
        ],
        interleaving=[1, 2, 2],
        manifests=lambda outcome: outcome.observed(2, "seen") == 1,
        description="w1[x] then r2[x] against a transaction that never ends",
    )


def _deadlocking_variant() -> ScenarioVariant:
    """Two read-modify-write increments driven into lock-upgrade order."""
    def increment(txn: int, amount: int) -> TransactionProgram:
        return TransactionProgram(txn, [
            ReadItem("x"),
            WriteItem("x", lambda ctx, amount=amount: ctx["x"] + amount),
            Commit(),
        ], label=f"adds {amount}")

    return ScenarioVariant(
        name="upgrade-deadlock",
        build_database=_one_item_database,
        build_programs=lambda: [increment(1, 10), increment(2, 20)],
        interleaving=[1, 2, 1, 2, 1, 2],
        manifests=lambda outcome: (outcome.all_committed(1, 2)
                                   and outcome.database.get_item("x") != 130),
        description="r1[x] r2[x] w1[x] w2[x] — upgrade deadlock under long "
                    "read locks",
    )


@pytest.mark.parametrize("level", TABLE_4_LEVELS, ids=lambda level: level.value)
class TestStalledVariants:
    def test_run_variant_never_raises_on_a_stall(self, level):
        result = run_variant(_stalling_variant(), engine_factory(level), "TEST")
        assert result.stalled == result.outcome.stalled
        if level in _READ_LOCKING_LEVELS:
            assert result.stalled, f"{level.value} reads should block and stall"
            # Stalled runs are first-class non-manifesting results; the
            # predicate (which would report a dirty read at the permissive
            # levels) is never consulted.
            assert not result.manifested
        else:
            # READ UNCOMMITTED reads take no locks; Snapshot Isolation reads
            # versions.  Both complete and flow through manifests as usual.
            assert not result.stalled

    def test_run_variant_resolves_deadlocks_via_victim_abort(self, level):
        result = run_variant(_deadlocking_variant(), engine_factory(level), "TEST")
        assert not result.stalled
        if level in (IsolationLevelName.REPEATABLE_READ,
                     IsolationLevelName.SERIALIZABLE):
            # Long read locks force the upgrade deadlock; the victim aborts,
            # the survivor commits, and the commit guard keeps the lost
            # update non-manifesting.
            assert result.outcome.deadlocked()
            assert not result.manifested
            assert len(result.outcome.committed_transactions()) == 1
        if level in (IsolationLevelName.READ_UNCOMMITTED,
                     IsolationLevelName.READ_COMMITTED):
            # Short/no read locks: no deadlock, the update is simply lost.
            assert not result.outcome.deadlocked()
            assert result.manifested
