"""Unit tests for the randomized workload generators (repro.workloads.generators)."""

from __future__ import annotations

import random


from repro.core.isolation import IsolationLevelName
from repro.testbed import make_engine
from repro.engine.scheduler import ScheduleRunner
from repro.workloads.generators import (
    contention_workload,
    history_corpus,
    random_history,
    random_programs,
    uniform_database,
)


class TestRandomHistories:
    def test_histories_are_complete(self, rng):
        for _ in range(20):
            history = random_history(rng)
            assert history.is_complete()

    def test_transaction_and_item_counts_are_respected(self, rng):
        history = random_history(rng, transactions=4, items=2,
                                 operations_per_transaction=3)
        assert len(history.transactions()) == 4
        assert history.items() <= {"x", "y"}
        # 4 transactions x (3 data ops + 1 terminal)
        assert len(history) == 16

    def test_corpus_is_deterministic_for_a_seed(self):
        first = history_corpus(seed=3, count=20)
        second = history_corpus(seed=3, count=20)
        assert [h.to_shorthand() for h in first] == [h.to_shorthand() for h in second]

    def test_different_seeds_differ(self):
        first = history_corpus(seed=1, count=20)
        second = history_corpus(seed=2, count=20)
        assert [h.to_shorthand() for h in first] != [h.to_shorthand() for h in second]

    def test_abort_probability_zero_means_all_commit(self):
        rng = random.Random(0)
        for _ in range(10):
            history = random_history(rng, abort_probability=0.0)
            assert not history.aborted_transactions()

    def test_write_probability_zero_means_read_only(self):
        rng = random.Random(0)
        history = random_history(rng, write_probability=0.0)
        assert all(not op.is_write for op in history if op.kind.is_data_access)


class TestRandomPrograms:
    def test_program_count_and_termination(self, rng):
        programs = random_programs(rng, transactions=6)
        assert len(programs) == 6
        for program in programs:
            assert program.steps[-1].describe() == "commit"

    def test_read_only_fraction_extremes(self, rng):
        readers = random_programs(rng, transactions=5, read_only_fraction=1.0)
        assert all(program.label.startswith("reader") for program in readers)
        writers = random_programs(rng, transactions=5, read_only_fraction=0.0)
        assert all(program.label.startswith("writer") for program in writers)

    def test_uniform_database_shape(self):
        database = uniform_database(items=4, initial_value=7)
        assert database.items() == {"a0": 7, "a1": 7, "a2": 7, "a3": 7}

    def test_contention_workload_is_runnable(self):
        database, programs, interleaving = contention_workload(
            seed=5, transactions=6, items=6, hot_items=2, read_only_fraction=0.5)
        engine = make_engine(database, IsolationLevelName.SNAPSHOT_ISOLATION)
        outcome = ScheduleRunner(engine, programs, interleaving).run()
        assert not outcome.stalled
        assert set(outcome.statuses) == {program.txn for program in programs}

    def test_contention_workload_is_deterministic(self):
        first = contention_workload(seed=9, transactions=4, items=5, hot_items=2,
                                    read_only_fraction=0.5)
        second = contention_workload(seed=9, transactions=4, items=5, hot_items=2,
                                     read_only_fraction=0.5)
        assert first[2] == second[2]
