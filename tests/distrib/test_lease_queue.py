"""The lease state machine: grants, renewal, reclaim, poison, fencing.

Deterministic edge tests run against both store backends on a hand-advanced
clock; the Hypothesis block drives one chunk through random operation
sequences and checks the machine's invariants against a tiny model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distrib.queue import LeaseQueue
from repro.explorer.worker import ScheduleRecord
from repro.persist import InMemoryStore, StaleLeaseError

from .conftest import FakeClock

CAMPAIGN = "lease-test"


def _records(chunk: int):
    return (ScheduleRecord((1, 2), f"w1[x{chunk}] c1 c2", True, (),
                           (1, 2), (), 0, 0, False),)


def _queue(store, clock, **kwargs):
    store.open_campaign(CAMPAIGN, {"spec_name": "t"})
    kwargs.setdefault("lease_duration", 1.0)
    kwargs.setdefault("backoff_base", 0.1)
    queue = LeaseQueue(store, CAMPAIGN, clock=clock, **kwargs)
    return queue


def test_grants_stream_order_and_commits_contiguously(store, clock):
    queue = _queue(store, clock)
    queue.register_scope("S", 3)
    first = queue.acquire("w0")
    second = queue.acquire("w1")
    assert (first.chunk_index, second.chunk_index) == (0, 1)
    assert second.token > first.token

    # Out-of-order completion buffers until the cursor catches up.
    assert queue.complete("S", 1, second.token, _records(1))
    assert store.scope_progress(CAMPAIGN).get("S") is None  # nothing flushed yet
    assert queue.complete("S", 0, first.token, _records(0))
    assert store.scope_progress(CAMPAIGN)["S"].cursor == 2
    third = queue.acquire("w0")
    assert queue.complete("S", 2, third.token, _records(2))
    assert queue.all_committed()
    assert not queue.has_open_work()


def test_renew_extends_but_expired_lease_cannot_renew(store, clock):
    queue = _queue(store, clock)
    queue.register_scope("S", 1)
    lease = queue.acquire("w0")
    clock.advance(0.9)
    assert queue.renew("S", 0, lease.token)      # still live: extended
    clock.advance(0.9)
    assert queue.renew("S", 0, lease.token)      # extension took effect
    clock.advance(1.1)
    # Deadline passed: renewal must fail even though nobody reclaimed yet.
    assert not queue.renew("S", 0, lease.token)
    assert queue.stats["renew_rejected"] == 1
    # ... and the worker must treat that as lease loss: completion fences.
    reclaimed = queue.reclaim_expired()
    assert [r.chunk_index for r in reclaimed] == [0]
    assert not queue.complete("S", 0, lease.token, _records(0))


def test_double_release_returns_false_once(store, clock):
    queue = _queue(store, clock)
    queue.register_scope("S", 2)
    lease = queue.acquire("w0")
    assert queue.release("S", 0, lease.token)
    assert not queue.release("S", 0, lease.token)    # idempotent: second is a no-op
    assert queue.stats["leases_released"] == 1
    # A released chunk re-grants immediately with no attempt penalty.
    again = queue.acquire("w1")
    assert again.chunk_index == 0 and again.attempts == 0
    assert again.token > lease.token


def test_reclaim_race_two_workers_old_token_fenced(store, clock):
    queue = _queue(store, clock)
    queue.register_scope("S", 1)
    stale = queue.acquire("w0")
    clock.advance(1.5)                               # w0 goes silent past deadline
    [reclaimed] = queue.reclaim_expired()
    assert not reclaimed.poisoned and reclaimed.token == stale.token
    # force_expire is the same race from the death-detection side: the
    # lease is no longer held, so the second reclaim must be a no-op.
    assert queue.force_expire("S", 0, stale.token) is None

    clock.advance(1.0)                               # past the retry backoff
    fresh = queue.acquire("w1")
    assert fresh.token > stale.token and fresh.attempts == 1
    # The zombie's result loses; the live worker's wins.
    assert not queue.complete("S", 0, stale.token, _records(0))
    assert queue.complete("S", 0, fresh.token, _records(0))
    assert queue.stats["fenced_results"] == 1
    # And the store itself refuses the stale token outright.
    with pytest.raises(StaleLeaseError):
        store.commit_chunk(CAMPAIGN, "S", 1, _records(1),
                           lease_token=stale.token)


def test_backoff_gates_regrant_until_clock_advances(store, clock):
    queue = _queue(store, clock, backoff_base=0.5)
    queue.register_scope("S", 1)
    queue.acquire("w0")
    clock.advance(1.5)
    queue.reclaim_expired()
    assert queue.acquire("w1") is None               # backoff gate still closed
    delay = queue.next_ready_delay()
    assert delay is not None and delay > 0.0
    clock.advance(delay)
    assert queue.acquire("w1") is not None


def test_poisoned_chunk_quarantine_and_drain(store, clock):
    queue = _queue(store, clock, max_attempts=2, backoff_base=0.01)
    queue.register_scope("S", 2)
    for _ in range(2):                               # burn the attempt budget
        lease = queue.acquire("w0")
        assert lease.chunk_index == 0
        clock.advance(1.5)
        queue.reclaim_expired()
        clock.advance(1.0)
    [poisoned] = queue.poisoned()
    assert (poisoned.chunk_index, poisoned.attempts) == (0, 2)
    # Quarantined: the queue serves chunk 1 and then refuses chunk 0.
    assert queue.acquire("w0").chunk_index == 1
    assert queue.acquire("w1") is None
    assert queue.has_open_work()                     # chunk 1 is in flight
    # Draining without requeue only reports; requeue resets the budget.
    assert queue.drain_poisoned() == (poisoned,)
    assert queue.acquire("w1") is None
    queue.drain_poisoned(requeue=True)
    retry = queue.acquire("w1")
    assert (retry.chunk_index, retry.attempts) == (0, 0)
    assert queue.stats["chunks_requeued"] == 1


def test_crashed_run_restarts_with_attempts_and_stale_tokens(store, clock):
    queue = _queue(store, clock, max_attempts=3)
    queue.register_scope("S", 2)
    held = queue.acquire("w0")                       # crash while leased
    clock.advance(2.0)
    queue.reclaim_expired()
    clock.advance(1.0)
    held = queue.acquire("w0")                       # second incarnation, leased
    assert held.attempts == 1

    restarted = LeaseQueue(store, CAMPAIGN, clock=clock, lease_duration=1.0)
    restarted.register_scope("S", 2)
    lease = restarted.acquire("w1")
    # The crashed run's leased row reloads as pending with its attempt
    # count, and the new grant's token strictly dominates every old one.
    assert lease.chunk_index == 0
    assert lease.attempts == 1
    assert lease.token > held.token
    assert not restarted.complete("S", 0, held.token, _records(0))
    assert restarted.complete("S", 0, lease.token, _records(0))


def test_poison_survives_restart(store, clock):
    queue = _queue(store, clock, max_attempts=1)
    queue.register_scope("S", 1)
    queue.acquire("w0")
    clock.advance(2.0)
    [reclaimed] = queue.reclaim_expired()
    assert reclaimed.poisoned

    restarted = LeaseQueue(store, CAMPAIGN, clock=clock)
    restarted.register_scope("S", 1)
    assert restarted.acquire("w0") is None
    assert [p.chunk_index for p in restarted.poisoned()] == [0]


# -- property: random operation sequences keep the machine honest ---------------------

_OPS = st.lists(
    st.sampled_from(["acquire", "acquire2", "renew", "release", "expire",
                     "reclaim", "complete", "complete_stale", "tick"]),
    min_size=1, max_size=40)


@given(ops=_OPS, max_attempts=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_single_chunk_invariants_under_random_ops(ops, max_attempts):
    store = InMemoryStore()
    clock = FakeClock()
    store.open_campaign(CAMPAIGN, {"spec_name": "t"})
    queue = LeaseQueue(store, CAMPAIGN, clock=clock, lease_duration=1.0,
                       backoff_base=0.1, max_attempts=max_attempts)
    queue.register_scope("S", 1)

    granted_tokens = []
    stale_tokens = set()
    committed = 0
    for op in ops:
        current = granted_tokens[-1] if granted_tokens else 0
        if op in ("acquire", "acquire2"):
            lease = queue.acquire("wA" if op == "acquire" else "wB")
            if lease is not None:
                assert lease.token > current, "tokens must be monotonic"
                granted_tokens.append(lease.token)
        elif op == "renew":
            queue.renew("S", 0, current)
        elif op == "release":
            if queue.release("S", 0, current):
                stale_tokens.add(current)
        elif op == "expire":
            clock.advance(1.6)
        elif op == "reclaim":
            for reclaimed in queue.reclaim_expired():
                stale_tokens.add(reclaimed.token)
        elif op == "complete":
            if queue.complete("S", 0, current, _records(0)):
                committed += 1
                assert current not in stale_tokens, \
                    "a reclaimed/released token must never commit"
        elif op == "complete_stale":
            for token in list(stale_tokens):
                assert not queue.complete("S", 0, token, _records(0))
        elif op == "tick":
            clock.advance(0.3)

        unit_attempts = queue._units[("S", 0)].attempts
        assert unit_attempts <= max_attempts
        if queue.poisoned():
            assert unit_attempts == max_attempts
            assert queue.acquire("wC") is None, "poisoned chunks never grant"

    assert committed <= 1, "one chunk commits at most once"
    progress = store.scope_progress(CAMPAIGN).get("S")
    assert committed == (progress.cursor if progress is not None else 0)
