"""Fault injection: spec parsing, the byte-identity matrix, zombie fencing."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.distrib.faults import (
    FaultPlan,
    FaultSpec,
    run_fault_matrix,
    serial_reference,
)
from repro.distrib.queue import LeaseQueue
from repro.distrib.runner import _worker_main
from repro.explorer.explorer import OUTCOME_MEMO_AUTO_LIMIT
from repro.explorer.schedules import schedule_space
from repro.explorer.worker import ChunkTask, execute_chunk
from repro.persist import InMemoryStore, SqliteStore, StaleLeaseError
from repro.workloads.program_sets import ProgramSetSpec, resolve_program_set

SPEC = ProgramSetSpec.make("bank-transfer")


# -- fault specs ----------------------------------------------------------------------


def test_fault_spec_parse_round_trips():
    for raw in ("kill:worker=0:ordinal=2",
                "hang:worker=1:ordinal=0:duration=0.8",
                "slow-commit:ordinal=3:duration=0.2",
                "sqlite-lock:ordinal=2:count=2"):
        spec = FaultSpec.parse(raw)
        assert FaultSpec.parse(spec.encode()) == spec


def test_fault_spec_rejects_nonsense():
    with pytest.raises(ValueError):
        FaultSpec.parse("meteor:worker=0")
    with pytest.raises(ValueError):
        FaultSpec.parse("kill:wat=1")
    with pytest.raises(ValueError):
        FaultSpec(kind="kill", count=0)


def test_random_plans_are_pure_functions_of_seed():
    assert FaultPlan.random(5).encode() == FaultPlan.random(5).encode()
    assert FaultPlan.random(5).encode() != FaultPlan.random(6).encode()


# -- the byte-identity matrix ---------------------------------------------------------


def test_fault_matrix_byte_identical_on_both_backends(tmp_path):
    """The acceptance gate in miniature: kills, hangs, slow commits, and
    lock storms on both backends all reproduce the serial bytes."""
    plans = [
        FaultPlan(),                                       # control leg
        FaultPlan.parse(["kill:worker=0:ordinal=1",
                         "sqlite-lock:ordinal=2:count=2"]),
        FaultPlan.parse(["hang:worker=1:ordinal=0:duration=0.5",
                         "slow-commit:ordinal=3:duration=0.05"]),
    ]
    legs = run_fault_matrix(
        SPEC, None, plans,
        [("memory", lambda index: InMemoryStore()),
         ("sqlite", lambda index: SqliteStore(tmp_path / f"m{index}.sqlite"))],
        max_schedules=120, seed=3, chunk_size=16, workers=2)
    assert len(legs) == 6
    for leg in legs:
        assert leg["success"], leg
        assert leg["byte_equal"], leg
        assert leg["poisoned"] == [], leg
    killed = [leg for leg in legs if any("kill" in f for f in leg["plan"])]
    assert all(leg["respawns"] == 1 for leg in killed)


def test_unkillable_chunk_is_poisoned_but_campaign_degrades_gracefully(tmp_path):
    """A chunk whose executor dies every single time exhausts its retry
    budget, lands in quarantine, and the rest of the campaign still
    commits — lose any subset, finish correct, merely slower."""
    from repro.distrib.runner import CampaignRunner

    # With zero backoff the reclaimed chunk regrants immediately, so every
    # incarnation's first chunk is the same chunk 0 — killing incarnations
    # 0..2 burns exactly its three-attempt budget.
    plan = FaultPlan(tuple(
        FaultSpec(kind="kill", worker=0, incarnation=incarnation, ordinal=0)
        for incarnation in range(3)))
    store = SqliteStore(tmp_path / "poison.sqlite")

    def runner(**kwargs):
        return CampaignRunner(store, SPEC, max_schedules=120, seed=3,
                              chunk_size=16, workers=1, max_attempts=3,
                              lease_duration=0.4, heartbeat_interval=0.1,
                              backoff_base=0.0, deadline_s=90.0, **kwargs)

    result = runner(faults=plan).run()
    assert not result.success and not result.timed_out
    assert [p.chunk_index for p in result.poisoned] == [0]
    assert result.poisoned[0].attempts == 3
    # Every chunk not quarantined (or blocked behind the quarantine)
    # still committed: 4 of the 5 scopes finished completely.
    assert result.committed_chunks == 32

    # The quarantine is durable: a fresh fault-free run still refuses the
    # chunk, until an operator requeues it — then the campaign completes.
    stuck = runner().run()
    assert not stuck.success and len(stuck.poisoned) == 1
    healed = runner(requeue_poisoned=True).run()
    assert healed.success and healed.poisoned == ()
    _, control_fingerprint = serial_reference(SPEC, None, max_schedules=120,
                                              seed=3, chunk_size=16)
    from repro.persist import fingerprint_from_store
    assert fingerprint_from_store(store, healed.campaign_id) \
        == control_fingerprint
    store.close()


# -- the zombie choreography ----------------------------------------------------------


def test_zombie_worker_with_expired_lease_can_never_commit(store):
    """The acceptance choreography, step by step: freeze a real worker
    process mid-chunk, reclaim its lease, complete the chunk elsewhere,
    unfreeze — the zombie's late result must be fenced at both layers."""
    campaign = "zombie-test"
    store.open_campaign(campaign, {"spec_name": SPEC.name})
    # backoff_base=0 so the reclaimed chunk regrants immediately.
    queue = LeaseQueue(store, campaign, lease_duration=0.2, backoff_base=0.0)
    builder = resolve_program_set(SPEC)
    _, programs = builder(**SPEC.kwargs())
    space = schedule_space(programs, max_schedules=48, seed=3)
    outcome_memo = space.total <= OUTCOME_MEMO_AUTO_LIMIT
    chunks = dict(space.iter_chunks(16))
    queue.register_scope("SERIALIZABLE", len(chunks))

    from repro.explorer.explorer import DEFAULT_LEVELS
    level = next(l for l in DEFAULT_LEVELS if l.value == "SERIALIZABLE")

    def task_for(chunk_index):
        return ChunkTask(chunk_index, SPEC, level, chunks[chunk_index],
                         builder, None, outcome_memo=outcome_memo)

    # Freeze: the worker hangs for 2s before executing its chunk, far past
    # the 0.2s lease, with heartbeats suppressed.
    frozen = FaultPlan.parse(["hang:worker=0:ordinal=0:duration=2.0"])
    parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
    worker = multiprocessing.Process(
        target=_worker_main,
        args=(0, 0, child_conn, 0.05, frozen.worker_specs(0, 0)),
        daemon=True)
    worker.start()
    child_conn.close()

    stale = queue.acquire("w0")
    parent_conn.send(("chunk", task_for(stale.chunk_index), stale.token))

    # Reclaim: the frozen worker misses every heartbeat and the deadline
    # lapses.  (Its one pre-hang beat may be buffered; renewal of a live
    # lease is fine — the deadline still expires during the 2s freeze.)
    assert worker.is_alive()
    reclaimed = queue.force_expire(stale.scope, stale.chunk_index, stale.token)
    assert reclaimed is not None and not reclaimed.poisoned

    # Complete elsewhere: a healthy in-process "worker" wins the regrant.
    fresh = queue.acquire("w1")
    assert fresh.chunk_index == stale.chunk_index
    assert fresh.token > stale.token
    result = execute_chunk(task_for(fresh.chunk_index))
    assert queue.complete(fresh.scope, fresh.chunk_index, fresh.token,
                          result.records)
    committed = store.scope_progress(campaign)["SERIALIZABLE"]
    assert committed.cursor == 1

    # Unfreeze: the zombie finishes its 2s nap, executes, and reports.
    message = parent_conn.recv()                 # blocks until the hang ends
    while message[0] == "hb":
        message = parent_conn.recv()
    kind, _, _, scope, chunk_index, token, records, _ = message
    assert kind == "result" and token == stale.token
    # Layer 1: the queue mirror fences the stale token.
    assert not queue.complete(scope, chunk_index, token, records)
    assert queue.stats["fenced_results"] == 1
    # Layer 2: even bypassing the queue, the store transaction refuses it.
    with pytest.raises(StaleLeaseError):
        store.commit_chunk(campaign, scope, 1, records, lease_token=token)
    # Nothing double-committed: the cursor never moved for the zombie.
    assert store.scope_progress(campaign)["SERIALIZABLE"].cursor == 1

    parent_conn.send(None)
    worker.join(timeout=5.0)
    assert not worker.is_alive()
    parent_conn.close()


def test_worker_sigkill_leaves_no_shared_state_corruption():
    """SIGKILL mid-chunk must not wedge anything the parent shares with
    other workers — each worker owns a private pipe, so the only symptom
    is EOF on that one channel."""
    plan = FaultPlan()
    parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
    worker = multiprocessing.Process(
        target=_worker_main, args=(0, 0, child_conn, 0.05,
                                   plan.worker_specs(0, 0)),
        daemon=True)
    worker.start()
    child_conn.close()
    os.kill(worker.pid, 9)
    worker.join(timeout=5.0)
    assert not worker.is_alive()
    with pytest.raises((EOFError, OSError)):
        parent_conn.recv()
    parent_conn.close()
