"""Shared fixtures: both store backends, plus a controllable clock."""

from __future__ import annotations

import pytest

from repro.persist import InMemoryStore, SqliteStore


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    """One of each backend; lease-machine tests run against both."""
    if request.param == "memory":
        backing = InMemoryStore()
    else:
        backing = SqliteStore(tmp_path / "campaign.sqlite")
    yield backing
    backing.close()


@pytest.fixture
def clock():
    return FakeClock()
