"""The distrib CLI: exit codes, fault flags, and the verify byte-diff."""

from __future__ import annotations

import json

import pytest

from repro.distrib.cli import main

RUN = ["--program-set", "increments", "--max-schedules", "96",
       "--chunk-size", "16", "--seed", "3", "--campaign", "demo",
       "--workers", "2", "--lease-duration", "0.5",
       "--heartbeat-interval", "0.1", "--deadline", "90"]


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "campaigns.sqlite")


def test_run_completes_and_prints_report(store_path, capsys):
    assert main(["run", "--store", store_path, "--stats"] + RUN) == 0
    out = capsys.readouterr().out
    assert "campaign demo: complete" in out
    assert "SERIALIZABLE" in out                  # the coverage report
    stats = json.loads(out[out.index("{"):out.rindex("}") + 1])
    assert stats["store_write_transactions"] >= 1


def test_run_under_kill_fault_still_exits_zero(store_path, capsys):
    argv = (["run", "--store", store_path,
             "--faults", "kill:worker=0:ordinal=1"] + RUN)
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "workers respawned: 1" in out


def test_verify_reports_byte_identity(store_path, capsys):
    argv = (["verify", "--store", store_path, "--fault-seed", "7"] + RUN)
    assert main(argv) == 0
    assert "byte-identical to serial" in capsys.readouterr().out


def test_fault_flags_are_mutually_exclusive(store_path):
    argv = (["run", "--store", store_path, "--faults", "kill:worker=0",
             "--fault-seed", "1"] + RUN)
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert "mutually exclusive" in str(excinfo.value)


def test_bad_fault_spec_fails_before_any_work(store_path, tmp_path):
    import os
    argv = (["run", "--store", store_path, "--faults", "meteor:worker=0"]
            + RUN)
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert "bad --faults" in str(excinfo.value)
    assert not os.path.exists(store_path)


def test_config_mismatch_is_a_clean_error(store_path, capsys):
    assert main(["run", "--store", store_path] + RUN) == 0
    capsys.readouterr()
    clash = ["run", "--store", store_path, "--program-set", "increments",
             "--max-schedules", "48", "--chunk-size", "16",
             "--campaign", "demo"]
    assert main(clash) == 2
    err = capsys.readouterr().err
    assert "error:" in err
