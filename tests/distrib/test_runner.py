"""The distributed runner: serial parity, crash-resume, graceful degradation."""

from __future__ import annotations

import pytest

from repro.analysis.coverage import coverage_report_from_store
from repro.distrib import CampaignRunner
from repro.distrib.faults import FaultPlan, serial_reference
from repro.persist import InMemoryStore, SqliteStore, fingerprint_from_store
from repro.workloads.program_sets import ProgramSetSpec

SPEC = ProgramSetSpec.make("bank-transfer")
N, SEED, CHUNK = 120, 3, 16


@pytest.fixture(scope="module")
def control():
    """The serial explore() bytes every distributed run must reproduce."""
    return serial_reference(SPEC, None, max_schedules=N, seed=SEED,
                            chunk_size=CHUNK)


def _run(store, **kwargs):
    kwargs.setdefault("max_schedules", N)
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("chunk_size", CHUNK)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_duration", 0.4)
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("deadline_s", 90.0)
    runner = CampaignRunner(store, SPEC, **kwargs)
    return runner, runner.run()


def test_fault_free_run_matches_serial_bytes(store, control):
    render, fingerprint = control
    runner, result = _run(store)
    assert result.success and not result.timed_out
    assert result.poisoned == ()
    assert fingerprint_from_store(store, runner.campaign_id) == fingerprint
    report = coverage_report_from_store(store, runner.campaign_id)
    assert report.render() == render


def test_rerun_of_complete_campaign_executes_nothing(store, control):
    _, fingerprint = control
    runner, result = _run(store)
    assert result.success
    again, rerun = _run(store)
    assert rerun.success
    assert rerun.stats["leases_granted"] == 0     # nothing left to grant
    assert rerun.committed_chunks == 0
    assert fingerprint_from_store(store, again.campaign_id) == fingerprint


def test_all_workers_lost_degrades_then_resume_completes(store, control):
    """Lose every worker with no respawn budget: the run stops incomplete
    but intact, and a later fault-free run finishes the campaign."""
    render, fingerprint = control
    plan = FaultPlan.parse(["kill:worker=0:ordinal=1"])
    runner, result = _run(store, workers=1, faults=plan, max_respawns=0)
    assert not result.success
    assert result.committed_chunks < 40           # stopped partway

    resumed, final = _run(store, workers=1)
    assert final.success
    assert final.committed_chunks + result.committed_chunks == 40
    assert fingerprint_from_store(store, resumed.campaign_id) == fingerprint
    assert coverage_report_from_store(store, resumed.campaign_id).render() \
        == render


def test_worker_kill_recovers_and_measures_latency(control):
    _, fingerprint = control
    store = InMemoryStore()
    plan = FaultPlan.parse(["kill:worker=0:ordinal=1"])
    runner, result = _run(store, faults=plan)
    assert result.success
    assert result.respawns == 1
    assert result.stats["leases_reclaimed"] >= 1
    assert result.recovery_latency_s is not None
    assert result.recovery_latency_s > 0.0
    assert fingerprint_from_store(store, runner.campaign_id) == fingerprint
    store.close()


def test_sqlite_lock_faults_are_retried(tmp_path, control):
    _, fingerprint = control
    store = SqliteStore(tmp_path / "locky.sqlite")
    plan = FaultPlan.parse(["sqlite-lock:ordinal=1:count=2"])
    runner, result = _run(store, faults=plan)
    assert result.success
    assert result.stats["store_busy_retries"] == 2
    assert fingerprint_from_store(store, runner.campaign_id) == fingerprint
    store.close()


def test_distrib_campaign_is_cross_resumable_with_serial_explore(tmp_path,
                                                                 control):
    """The runner writes the same campaign a serial explore(store=...) run
    would: serial code can finish what the distributed runner started."""
    from repro.explorer import explore

    render, fingerprint = control
    store = SqliteStore(tmp_path / "cross.sqlite")
    plan = FaultPlan.parse(["kill:worker=0:ordinal=1"])
    runner, result = _run(store, workers=1, faults=plan, max_respawns=0)
    assert not result.success                      # stopped partway

    explore(SPEC, max_schedules=N, seed=SEED, chunk_size=CHUNK,
            reduction="none", store=store, campaign_id=runner.campaign_id)
    assert fingerprint_from_store(store, runner.campaign_id) == fingerprint
    assert coverage_report_from_store(store, runner.campaign_id).render() \
        == render
    store.close()
