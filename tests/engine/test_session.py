"""Unit tests for the testbed facade (repro.testbed)."""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName
from repro.engine.interface import Engine
from repro.locking.engine import LockingEngine
from repro.mvcc.read_consistency import ReadConsistencyEngine
from repro.mvcc.snapshot import SnapshotIsolationEngine
from repro.storage.database import Database
from repro.storage.predicates import whole_table
from repro.storage.rows import Row
from repro.testbed import (
    ALL_ENGINE_LEVELS,
    LOCKING_LEVELS,
    Session,
    TransactionAborted,
    WouldBlock,
    engine_factory,
    make_engine,
    run_programs,
)
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem


def _database() -> Database:
    database = Database()
    database.set_item("x", 50)
    database.create_table("tasks", [Row("t1", {"hours": 3})])
    return database


class TestMakeEngine:
    def test_every_level_builds_an_engine(self):
        for level in ALL_ENGINE_LEVELS:
            engine = make_engine(_database(), level)
            assert isinstance(engine, Engine)
            assert engine.level is level

    def test_locking_levels_build_locking_engines(self):
        for level in LOCKING_LEVELS:
            assert isinstance(make_engine(_database(), level), LockingEngine)

    def test_mvcc_levels_build_mvcc_engines(self):
        assert isinstance(
            make_engine(_database(), IsolationLevelName.SNAPSHOT_ISOLATION),
            SnapshotIsolationEngine)
        assert isinstance(
            make_engine(_database(), IsolationLevelName.ORACLE_READ_CONSISTENCY),
            ReadConsistencyEngine)

    def test_options_are_forwarded(self):
        engine = make_engine(_database(), IsolationLevelName.SNAPSHOT_ISOLATION,
                             first_committer_wins=False)
        assert engine.first_committer_wins is False

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            make_engine(_database(), IsolationLevelName.ANOMALY_SERIALIZABLE)

    def test_engine_factory_builds_fresh_engines(self):
        factory = engine_factory(IsolationLevelName.SERIALIZABLE)
        first, second = factory(_database()), factory(_database())
        assert first is not second


class TestRunPrograms:
    def test_runs_programs_under_requested_level(self):
        outcome = run_programs(_database(), IsolationLevelName.SERIALIZABLE, [
            TransactionProgram(1, [ReadItem("x"), WriteItem("x", 1), Commit()]),
        ])
        assert outcome.committed(1)
        assert outcome.engine_name == "Locking SERIALIZABLE"


class TestSession:
    def test_basic_read_write_commit(self):
        session = Session(_database(), IsolationLevelName.SERIALIZABLE)
        txn = session.begin()
        assert txn.read("x") == 50
        txn.write("x", 75)
        txn.commit()
        assert session.database.get_item("x") == 75

    def test_snapshot_isolation_sessions_see_their_snapshot(self):
        session = Session(_database(), IsolationLevelName.SNAPSHOT_ISOLATION)
        reader = session.begin()
        writer = session.begin()
        writer.write("x", 99)
        writer.commit()
        assert reader.read("x") == 50  # snapshot taken before the writer committed

    def test_blocked_operation_raises_wouldblock(self):
        session = Session(_database(), IsolationLevelName.SERIALIZABLE)
        writer = session.begin()
        writer.write("x", 99)
        reader = session.begin()
        with pytest.raises(WouldBlock):
            reader.read("x")

    def test_first_committer_wins_raises_transaction_aborted(self):
        session = Session(_database(), IsolationLevelName.SNAPSHOT_ISOLATION)
        first = session.begin()
        second = session.begin()
        first.write("x", 1)
        second.write("x", 2)
        first.commit()
        with pytest.raises(TransactionAborted):
            second.commit()

    def test_row_operations_through_the_session(self):
        session = Session(_database(), IsolationLevelName.SERIALIZABLE)
        txn = session.begin()
        txn.insert("tasks", Row("t2", {"hours": 2}))
        txn.update_row("tasks", "t1", hours=4)
        rows = txn.select(whole_table("All", "tasks"))
        assert {row.key for row in rows} == {"t1", "t2"}
        txn.delete_row("tasks", "t2")
        txn.commit()
        assert not session.database.table("tasks").has("t2")

    def test_abort_rolls_back(self):
        session = Session(_database(), IsolationLevelName.SERIALIZABLE)
        txn = session.begin()
        txn.write("x", 1)
        txn.abort()
        assert session.database.get_item("x") == 50
