"""Unit tests for the schedule runner (repro.engine.scheduler)."""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName
from repro.core.phenomena import P0_DIRTY_WRITE, P1_DIRTY_READ
from repro.engine.interface import TransactionState
from repro.engine.programs import (
    Abort,
    Commit,
    ReadItem,
    TransactionProgram,
    WriteItem,
)
from repro.engine.scheduler import ScheduleRunner, run_schedule
from repro.locking.engine import LockingEngine
from repro.mvcc.snapshot import SnapshotIsolationEngine
from repro.storage.database import Database


def _database() -> Database:
    database = Database()
    database.set_item("x", 100)
    database.set_item("y", 100)
    return database


def _transfer_programs():
    return [
        TransactionProgram(1, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] - 40),
            ReadItem("y"),
            WriteItem("y", lambda ctx: ctx["y"] + 40),
            Commit(),
        ]),
        TransactionProgram(2, [
            ReadItem("x", into="seen_x"),
            ReadItem("y", into="seen_y"),
            Commit(),
        ]),
    ]


class TestBasicExecution:
    def test_single_program_runs_to_completion(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.SERIALIZABLE)
        outcome = run_schedule(engine, [
            TransactionProgram(1, [ReadItem("x"), WriteItem("x", 7), Commit()]),
        ])
        assert outcome.committed(1)
        assert outcome.database.get_item("x") == 7
        assert outcome.history.to_shorthand() == "r1[x=100] w1[x=7] c1"

    def test_default_interleaving_is_round_robin(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.SERIALIZABLE)
        outcome = run_schedule(engine, _transfer_programs())
        assert outcome.all_committed(1, 2)
        assert not outcome.stalled

    def test_explicit_interleaving_is_followed_when_possible(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.READ_UNCOMMITTED)
        outcome = ScheduleRunner(engine, _transfer_programs(),
                                 interleaving=[1, 1, 2, 2, 2, 1, 1, 1]).run()
        # Under READ UNCOMMITTED the audit slips between T1's two writes.
        assert outcome.observed(2, "seen_x") == 60
        assert outcome.observed(2, "seen_y") == 100
        assert P1_DIRTY_READ.occurs_in(outcome.history)

    def test_contexts_are_reported_per_transaction(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.SERIALIZABLE)
        outcome = run_schedule(engine, _transfer_programs())
        assert set(outcome.reads_observed(2)) == {"seen_x", "seen_y"}

    def test_program_abort_is_recorded(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.SERIALIZABLE)
        outcome = run_schedule(engine, [
            TransactionProgram(1, [WriteItem("x", 1), Abort()]),
        ])
        assert outcome.aborted(1)
        assert outcome.history.aborts(1)
        assert outcome.database.get_item("x") == 100

    def test_traces_record_every_attempt(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.SERIALIZABLE)
        outcome = run_schedule(engine, _transfer_programs())
        assert len(outcome.traces) >= 8
        assert outcome.summary()


class TestBlockingAndDeadlock:
    def test_blocking_defers_but_eventually_completes(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.SERIALIZABLE)
        programs = [
            TransactionProgram(1, [WriteItem("x", 1), WriteItem("y", 1), Commit()]),
            TransactionProgram(2, [WriteItem("x", 2), WriteItem("y", 2), Commit()]),
        ]
        outcome = ScheduleRunner(engine, programs,
                                 interleaving=[1, 2, 2, 2, 1, 1]).run()
        assert outcome.all_committed(1, 2)
        assert outcome.blocked_events > 0
        # No dirty write in the realized history: T2 waited for T1.
        assert not P0_DIRTY_WRITE.occurs_in(outcome.history)
        assert outcome.database.get_item("x") == outcome.database.get_item("y")

    def test_deadlock_is_broken_by_aborting_a_victim(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.REPEATABLE_READ)
        programs = [
            TransactionProgram(1, [ReadItem("x"),
                                   WriteItem("x", lambda ctx: ctx["x"] + 30), Commit()]),
            TransactionProgram(2, [ReadItem("x"),
                                   WriteItem("x", lambda ctx: ctx["x"] + 20), Commit()]),
        ]
        outcome = ScheduleRunner(engine, programs,
                                 interleaving=[1, 2, 2, 2, 1, 1]).run()
        assert outcome.deadlocked()
        assert outcome.aborted(2) and outcome.committed(1)
        assert outcome.abort_reasons[2] == "deadlock victim"
        assert outcome.database.get_item("x") == 130

    def test_engine_initiated_abort_terminates_the_program(self):
        engine = SnapshotIsolationEngine(_database())
        programs = [
            TransactionProgram(1, [ReadItem("x"),
                                   WriteItem("x", lambda ctx: ctx["x"] + 30), Commit()]),
            TransactionProgram(2, [ReadItem("x"),
                                   WriteItem("x", lambda ctx: ctx["x"] + 20), Commit()]),
        ]
        outcome = ScheduleRunner(engine, programs,
                                 interleaving=[1, 2, 2, 2, 1, 1]).run()
        # First committer (T2) wins; T1's commit is refused.
        assert outcome.committed(2) and outcome.aborted(1)
        assert "first-committer-wins" in outcome.abort_reasons[1]
        assert outcome.database.get_item("x") == 120

    def test_statuses_reflect_engine_state(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.SERIALIZABLE)
        outcome = run_schedule(engine, _transfer_programs())
        assert outcome.statuses[1] is TransactionState.COMMITTED
        assert outcome.statuses[2] is TransactionState.COMMITTED


class TestRunnerValidation:
    def test_duplicate_transaction_ids_rejected(self):
        engine = LockingEngine(_database())
        with pytest.raises(ValueError):
            ScheduleRunner(engine, [
                TransactionProgram(1, [Commit()]),
                TransactionProgram(1, [Commit()]),
            ])

    def test_empty_program_list_rejected(self):
        engine = LockingEngine(_database())
        with pytest.raises(ValueError):
            ScheduleRunner(engine, [])

    def test_unknown_interleaving_entries_are_ignored(self):
        engine = LockingEngine(_database(), level=IsolationLevelName.SERIALIZABLE)
        outcome = ScheduleRunner(engine, [
            TransactionProgram(1, [ReadItem("x"), Commit()]),
        ], interleaving=[9, 1, 9, 1]).run()
        assert outcome.committed(1)
