"""The scheduler's reset/replay entry point (the explorer's hot path)."""

from __future__ import annotations

from repro.core.isolation import IsolationLevelName
from repro.engine.scheduler import ScheduleRunner, replay_schedules, run_schedule
from repro.testbed import make_engine
from repro.workloads.program_sets import ProgramSetSpec, build_program_set


def _fresh(level=IsolationLevelName.READ_COMMITTED):
    database, programs = build_program_set(ProgramSetSpec.make("increments",
                                                               transactions=2))
    return make_engine(database, level), programs


class TestReplay:
    def test_replay_matches_a_fresh_runner(self):
        interleavings = [(1, 2, 1, 2, 1, 2), (1, 1, 1, 2, 2, 2), (2, 2, 2, 1, 1, 1)]
        engine, programs = _fresh()
        runner = ScheduleRunner(engine, programs, interleavings[0])
        replayed = [runner.run()]
        for interleaving in interleavings[1:]:
            engine, _ = _fresh()
            replayed.append(runner.replay(engine, interleaving))

        for interleaving, outcome in zip(interleavings, replayed):
            engine, fresh_programs = _fresh()
            expected = run_schedule(engine, fresh_programs, interleaving)
            assert outcome.history.to_shorthand() == expected.history.to_shorthand()
            assert outcome.statuses == expected.statuses
            assert outcome.blocked_events == expected.blocked_events

    def test_reset_clears_all_run_state(self):
        engine, programs = _fresh()
        runner = ScheduleRunner(engine, programs, (1, 2, 1, 2, 1, 2))
        first = runner.run()
        assert first.history.operations
        engine, _ = _fresh()
        runner.reset(engine, (1, 1, 1, 2, 2, 2))
        second = runner.run()
        assert second.blocked_events == 0
        assert not second.deadlocks
        assert len(second.history.operations) == len(first.history.operations)

    def test_replay_schedules_generator(self):
        def builder():
            engine, _ = _fresh()
            return engine

        _, programs = _fresh()
        interleavings = [(1, 2, 1, 2, 1, 2), (1, 1, 1, 2, 2, 2)]
        outcomes = list(replay_schedules(builder, programs, interleavings))
        assert len(outcomes) == 2
        assert outcomes[0].history.to_shorthand() != outcomes[1].history.to_shorthand()
        assert all(outcome.all_committed() for outcome in outcomes)
