"""Unit tests for transaction programs and steps (repro.engine.programs)."""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName
from repro.engine.programs import (
    Abort,
    CloseCursor,
    Commit,
    CursorUpdate,
    DeleteRow,
    Fetch,
    InsertRow,
    OpenCursor,
    ReadItem,
    SelectPredicate,
    TransactionProgram,
    UpdateRow,
    WriteItem,
)
from repro.locking.engine import LockingEngine
from repro.storage.database import Database
from repro.storage.predicates import attribute_equals
from repro.storage.rows import Row


def _engine() -> LockingEngine:
    database = Database()
    database.set_item("x", 100)
    database.create_table("employees", [Row("e1", {"active": True})])
    engine = LockingEngine(database, level=IsolationLevelName.SERIALIZABLE)
    engine.begin(1)
    return engine


class TestSteps:
    def test_read_binds_into_context(self):
        engine = _engine()
        context = {}
        ReadItem("x", into="balance").perform(engine, 1, context)
        assert context["balance"] == 100

    def test_read_defaults_binding_to_item_name(self):
        engine = _engine()
        context = {}
        ReadItem("x").perform(engine, 1, context)
        assert context["x"] == 100

    def test_write_literal_and_computed_values(self):
        engine = _engine()
        context = {"x": 100}
        WriteItem("x", 5).perform(engine, 1, context)
        assert engine.database.get_item("x") == 5
        WriteItem("x", lambda ctx: ctx["x"] + 30).perform(engine, 1, context)
        assert engine.database.get_item("x") == 130

    def test_select_binds_matching_rows(self):
        engine = _engine()
        predicate = attribute_equals("Active", "employees", "active", True)
        context = {}
        SelectPredicate(predicate, into="active").perform(engine, 1, context)
        assert [row.key for row in context["active"]] == ["e1"]

    def test_insert_update_delete_rows(self):
        engine = _engine()
        context = {}
        InsertRow("employees", Row("e2", {"active": False})).perform(engine, 1, context)
        UpdateRow("employees", "e2", {"active": True}).perform(engine, 1, context)
        assert engine.database.table("employees").get("e2").get("active") is True
        DeleteRow("employees", "e2").perform(engine, 1, context)
        assert not engine.database.table("employees").has("e2")

    def test_insert_rejects_non_rows(self):
        engine = _engine()
        with pytest.raises(TypeError):
            InsertRow("employees", {"not": "a row"}).perform(engine, 1, {})

    def test_cursor_steps(self):
        engine = _engine()
        context = {}
        OpenCursor("c", ["x"]).perform(engine, 1, context)
        Fetch("c", into="seen").perform(engine, 1, context)
        assert context["seen"] == 100
        CursorUpdate("c", lambda ctx: ctx["seen"] + 1).perform(engine, 1, context)
        assert engine.database.get_item("x") == 101
        CloseCursor("c").perform(engine, 1, context)

    def test_commit_and_abort(self):
        engine = _engine()
        assert Commit().perform(engine, 1, {}).is_ok
        other = _engine()
        assert Abort().perform(other, 1, {}).is_ok

    def test_describe_is_informative(self):
        assert "x" in ReadItem("x").describe()
        assert "commit" == Commit().describe()
        assert "employees" in InsertRow("employees", Row("e9")).describe()


class TestTransactionProgram:
    def test_requires_at_least_one_step(self):
        with pytest.raises(ValueError):
            TransactionProgram(1, [])

    def test_display_name_defaults_to_txn_id(self):
        assert TransactionProgram(3, [Commit()]).display_name == "T3"
        assert TransactionProgram(3, [Commit()], label="audit").display_name == "audit"

    def test_len_counts_steps(self):
        assert len(TransactionProgram(1, [ReadItem("x"), Commit()])) == 2
