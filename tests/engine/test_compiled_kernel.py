"""Byte-equality gates for the compiled slot-program step kernel.

The stepwise API is the source of truth: for every engine level, driving a
schedule through ``ScheduleRunner(compiled=True)`` must produce an outcome
byte-equal to the stepwise runner — history, statuses, contexts, abort
reasons, blocked counts, deadlocks, stall flag, and traces.
"""

from __future__ import annotations

import pytest

from repro.core.isolation import IsolationLevelName
from repro.engine.interface import (
    OP_ABORT,
    OP_COMMIT,
    OP_GENERIC,
    OP_READ,
    OP_WRITE,
)
from repro.engine.programs import (
    Abort,
    Commit,
    OpenCursor,
    Fetch,
    ReadItem,
    SelectPredicate,
    TransactionProgram,
    WriteItem,
    compile_program,
    compile_programs,
    compile_step,
)
from repro.engine.scheduler import ScheduleRunner
from repro.explorer.schedules import enumerate_interleavings
from repro.storage.database import Database
from repro.storage.predicates import Predicate
from repro.testbed import make_engine
from repro.workloads.program_sets import ProgramSetSpec, build_program_set

ALL_LEVELS = (
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.CURSOR_STABILITY,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SERIALIZABLE,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.ORACLE_READ_CONSISTENCY,
)


def outcome_key(outcome):
    """Everything observable about an execution, as a comparable value."""
    return (
        outcome.history.to_shorthand(),
        tuple(sorted((txn, state.value) for txn, state in outcome.statuses.items())),
        tuple(sorted((txn, tuple(sorted(ctx.items())))
                     for txn, ctx in outcome.contexts.items())),
        tuple(sorted(outcome.abort_reasons.items())),
        outcome.blocked_events,
        tuple((d.cycle, d.victim) for d in outcome.deadlocks),
        tuple((t.txn, t.step, t.status.value, t.reason) for t in outcome.traces),
        outcome.stalled,
    )


def run_both(database_builder, programs, interleaving, level):
    stepwise = ScheduleRunner(make_engine(database_builder(), level), programs,
                              interleaving, compiled=False).run()
    compiled = ScheduleRunner(make_engine(database_builder(), level), programs,
                              interleaving, compiled=True).run()
    return outcome_key(stepwise), outcome_key(compiled)


class TestCompilePass:
    def test_core_steps_get_dedicated_opcodes(self):
        assert compile_step(ReadItem("x"))[0] == OP_READ
        assert compile_step(WriteItem("x", 1))[0] == OP_WRITE
        assert compile_step(Commit())[0] == OP_COMMIT
        assert compile_step(Abort())[0] == OP_ABORT
        assert compile_step(SelectPredicate(
            Predicate("P", "t", lambda row: True)))[0] == OP_GENERIC

    def test_subclassed_steps_fall_back_to_generic(self):
        class TracingRead(ReadItem):
            pass

        assert compile_step(TracingRead("x"))[0] == OP_GENERIC

    def test_describe_strings_match_the_stepwise_renderings(self):
        for step in (ReadItem("x"), WriteItem("y", 2), Commit(), Abort()):
            assert compile_step(step)[7] == step.describe()

    def test_footprints_compile_to_item_id_tuples(self):
        programs = [
            TransactionProgram(1, [ReadItem("x"), WriteItem("y", 1), Commit()]),
            TransactionProgram(2, [WriteItem("x", 2), Commit()]),
        ]
        compiled = compile_programs(programs)
        ids = compiled.item_ids
        assert set(ids) == {"x", "y"}
        first = compiled.programs[0]
        assert first.read_ids[0] == (ids["x"],)
        assert first.write_ids[1] == (ids["y"],)
        assert first.opaque == (False, False, False)
        assert compiled.programs[1].write_ids[0] == (ids["x"],)
        assert compiled.by_txn()[2] is compiled.programs[1]

    def test_compile_program_interns_items_into_a_shared_table(self):
        table = {}
        compile_program(TransactionProgram(1, [ReadItem("x"), Commit()]), table)
        compile_program(TransactionProgram(2, [WriteItem("x", 0), Commit()]), table)
        assert table == {"x": 0}


class TestKernelByteEquality:
    @pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda lvl: lvl.value)
    def test_every_interleaving_of_a_contended_pair(self, level):
        def build():
            database = Database()
            database.set_item("x", 0)
            database.set_item("y", 0)
            return database

        programs = [
            TransactionProgram(1, [ReadItem("x", into="v"),
                                   WriteItem("x", lambda ctx: ctx["v"] + 1),
                                   WriteItem("y", 7), Commit()]),
            TransactionProgram(2, [ReadItem("x"), WriteItem("x", 99), Commit()]),
        ]
        for interleaving in enumerate_interleavings([1, 2], [4, 3]):
            stepwise, compiled = run_both(build, programs, interleaving, level)
            assert stepwise == compiled, interleaving

    @pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda lvl: lvl.value)
    def test_registered_contention_set_sampled(self, level):
        spec = ProgramSetSpec.make("contention", transactions=3, items=3,
                                   hot_items=2, operations_per_transaction=2)
        from repro.explorer.schedules import schedule_space
        _, programs = build_program_set(spec)
        schedules = schedule_space(programs, mode="sample", max_schedules=60,
                                   seed=7).schedules

        def build():
            database, _ = build_program_set(spec)
            return database

        for interleaving in schedules:
            stepwise, compiled = run_both(build, programs, interleaving, level)
            assert stepwise == compiled, interleaving

    def test_generic_steps_cursors_and_aborts(self):
        """Cursor/predicate steps run through the OP_GENERIC fallback."""
        def build():
            database = Database()
            database.set_item("a", 1)
            database.set_item("b", 2)
            return database

        programs = [
            TransactionProgram(1, [OpenCursor("c", ["a", "b"]), Fetch("c", into="f"),
                                   Fetch("c"), Commit()]),
            TransactionProgram(2, [WriteItem("a", 5), Abort()]),
        ]
        for level in (IsolationLevelName.CURSOR_STABILITY,
                      IsolationLevelName.READ_COMMITTED,
                      IsolationLevelName.SNAPSHOT_ISOLATION):
            for interleaving in enumerate_interleavings([1, 2], [4, 2]):
                stepwise, compiled = run_both(build, programs, interleaving, level)
                assert stepwise == compiled, (level, interleaving)


class TestCompiledRunnerApi:
    def _testbed(self):
        database = Database()
        database.set_item("x", 0)
        programs = [TransactionProgram(1, [ReadItem("x"), WriteItem("x", 1),
                                           Commit()])]
        return database, programs

    def test_run_compiled_compiles_on_first_use(self):
        database, programs = self._testbed()
        runner = ScheduleRunner(make_engine(database, IsolationLevelName.SERIALIZABLE),
                                programs)
        outcome = runner.run_compiled()
        assert outcome.history.to_shorthand() == "r1[x=0] w1[x=1] c1"

    def test_enable_compiled_is_idempotent_and_survives_reset(self):
        database, programs = self._testbed()
        runner = ScheduleRunner(make_engine(database, IsolationLevelName.SERIALIZABLE),
                                programs, compiled=True)
        runner.enable_compiled()
        first = runner.run()
        fresh = Database()
        fresh.set_item("x", 0)
        second = runner.replay(make_engine(fresh, IsolationLevelName.SERIALIZABLE))
        assert first.history.to_shorthand() == second.history.to_shorthand()
