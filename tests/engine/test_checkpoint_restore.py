"""The checkpoint/restore contract: rolling back must be byte-exact.

Property-style coverage of the prefix-sharing executor's foundation: for every
Table 4 level (plus Oracle Read Consistency), checkpointing after an arbitrary
step prefix, running to completion, restoring, and re-running the suffix must
yield an outcome byte-equal to an uninterrupted run — history shorthand,
statuses, abort reasons, blocked counts, deadlocks, stall flags, database
state, and lock/version internals included.  Stalled and deadlock-aborted
prefixes are covered explicitly: those paths mutate the waits-for graph, the
undo log, and the version store in ways plain commits never do.
"""

from __future__ import annotations

import pytest

from repro.analysis.matrix import TABLE_4_LEVELS
from repro.core.isolation import IsolationLevelName
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from repro.engine.scheduler import ScheduleRunner
from repro.explorer.schedules import schedule_space
from repro.storage.database import Database
from repro.testbed import make_engine
from repro.workloads.program_sets import ProgramSetSpec, build_program_set

ALL_LEVELS = TABLE_4_LEVELS + (IsolationLevelName.ORACLE_READ_CONSISTENCY,)

SPEC = ProgramSetSpec.make("contention", transactions=3, items=3, hot_items=2,
                           operations_per_transaction=2)


def outcome_key(outcome):
    """Everything observable about an outcome, as a comparable value."""
    return (
        outcome.history.to_shorthand(),
        tuple(sorted((txn, state.value) for txn, state in outcome.statuses.items())),
        tuple(sorted(outcome.abort_reasons.items())),
        outcome.blocked_events,
        tuple((deadlock.cycle, deadlock.victim) for deadlock in outcome.deadlocks),
        outcome.stalled,
        outcome.database.snapshot(),
    )


def engine_state_key(engine):
    """Internal engine state that must also round-trip (locks, versions, clock)."""
    parts = [tuple(sorted(engine._states.items(), key=lambda kv: kv[0]))]
    if hasattr(engine, "locks"):
        parts.append(tuple(sorted(lock.describe() for lock in engine.locks.all_locks())))
    if hasattr(engine, "store"):
        parts.append(tuple(sorted(
            (item, tuple((v.value, v.commit_ts, v.txn) for v in chain))
            for item, chain in engine.store._items.items()
        )))
    if hasattr(engine, "clock"):
        parts.append(engine.clock.now())
    if hasattr(engine, "undo"):
        parts.append(tuple(sorted(
            (txn, tuple(record.describe() for record in records))
            for txn, records in engine.undo._records.items()
        )))
    return tuple(parts)


def run_plain(level, schedule, builder=None):
    database, programs = (builder or (lambda: build_program_set(SPEC)))()
    engine = make_engine(database, level)
    runner = ScheduleRunner(engine, programs, schedule, collect_traces=False)
    return runner.run()


def run_with_restore(level, schedule, prefix_length, builder=None):
    """Checkpoint after ``prefix_length`` slots, finish, restore, re-finish."""
    database, programs = (builder or (lambda: build_program_set(SPEC)))()
    engine = make_engine(database, level)
    runner = ScheduleRunner(engine, programs, collect_traces=False)
    runner.begin_all()
    for txn in schedule[:prefix_length]:
        runner.apply_slot(txn)
    token = runner.checkpoint()

    def finish():
        for txn in schedule[prefix_length:]:
            runner.apply_slot(txn)
        return runner.drain()

    first = finish()
    runner.restore(token)
    second = finish()
    return first, second, engine


@pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda level: level.value)
def test_restore_after_arbitrary_prefixes_is_byte_exact(level):
    _, programs = build_program_set(SPEC)
    schedules = schedule_space(programs, mode="sample", max_schedules=12,
                               seed=7).schedules
    for schedule in schedules:
        reference = outcome_key(run_plain(level, schedule))
        for prefix_length in range(0, len(schedule) + 1, 3):
            first, second, _ = run_with_restore(level, schedule, prefix_length)
            assert outcome_key(first) == reference, (level, schedule, prefix_length)
            assert outcome_key(second) == reference, (level, schedule, prefix_length)


@pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda level: level.value)
def test_restore_token_is_reusable(level):
    """The same token restored repeatedly keeps producing identical suffixes."""
    _, programs = build_program_set(SPEC)
    schedule = schedule_space(programs, mode="sample", max_schedules=1,
                              seed=3).schedules[0]
    database, programs = build_program_set(SPEC)
    engine = make_engine(database, level)
    runner = ScheduleRunner(engine, programs, collect_traces=False)
    runner.begin_all()
    for txn in schedule[:5]:
        runner.apply_slot(txn)
    token = runner.checkpoint()
    keys = []
    states = []
    for _ in range(3):
        for txn in schedule[5:]:
            runner.apply_slot(txn)
        keys.append(outcome_key(runner.drain()))
        states.append(engine_state_key(engine))
        runner.restore(token)
    assert keys[0] == keys[1] == keys[2]
    assert states[0] == states[1] == states[2]


def _deadlocking_builder():
    """Two read-modify-write increments of the same item: the classic RR deadlock."""
    database = Database()
    database.set_item("x", 100)
    programs = [
        TransactionProgram(txn, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] + 10),
            Commit(),
        ], label=f"incr-{txn}")
        for txn in (1, 2)
    ]
    return database, programs


@pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda level: level.value)
def test_restore_across_deadlock_aborted_prefixes(level):
    """Checkpoints taken before/after a deadlock victim abort must round-trip."""
    schedule = (1, 2, 1, 2, 1, 2)  # interleaved RMW: deadlocks under RR/SER
    reference = outcome_key(run_plain(level, schedule, _deadlocking_builder))
    for prefix_length in range(len(schedule) + 1):
        first, second, engine = run_with_restore(level, schedule, prefix_length,
                                                 _deadlocking_builder)
        assert outcome_key(first) == reference, (level, prefix_length)
        assert outcome_key(second) == reference, (level, prefix_length)
    # Sanity: the scenario really deadlocks somewhere in the level set.
    if level in (IsolationLevelName.REPEATABLE_READ, IsolationLevelName.SERIALIZABLE):
        assert run_plain(level, schedule, _deadlocking_builder).deadlocks


def _stalling_builder():
    """A writer that never terminates wedges any shared-lock reader."""
    database = Database()
    database.set_item("x", 100)
    programs = [
        TransactionProgram(1, [WriteItem("x", 1)], label="never-ends"),
        TransactionProgram(2, [ReadItem("x", into="seen"), Commit()], label="reader"),
    ]
    return database, programs


@pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda level: level.value)
def test_restore_across_stalled_prefixes(level):
    schedule = (1, 2, 2)
    reference = outcome_key(run_plain(level, schedule, _stalling_builder))
    for prefix_length in range(len(schedule) + 1):
        first, second, _ = run_with_restore(level, schedule, prefix_length,
                                            _stalling_builder)
        assert outcome_key(first) == reference, (level, prefix_length)
        assert outcome_key(second) == reference, (level, prefix_length)
    if level in (IsolationLevelName.READ_COMMITTED, IsolationLevelName.SERIALIZABLE):
        assert run_plain(level, schedule, _stalling_builder).stalled
